//! HPCToolkit-NUMA core: the paper's primary contribution.
//!
//! This crate implements the online profiler of
//! *A Tool to Analyze the Performance of Multithreaded Programs on NUMA
//! Architectures* (Liu & Mellor-Crummey, PPoPP 2014):
//!
//! * **NUMA metrics** (§4) — [`MetricSet`] with `M_l`/`M_r`, per-domain
//!   request counts, remote-latency totals, and the `lpi_NUMA` derived
//!   metric with its 0.1 cycles/instruction significance threshold.
//! * **Code-centric attribution** (§5.1) — per-thread calling context trees
//!   ([`Cct`]) with statement-level leaves.
//! * **Data-centric attribution** (§5.1) — [`VariableRegistry`] mapping
//!   sampled addresses to heap/static/stack variables, heap variables
//!   attributed to their full allocation call path.
//! * **Address-centric attribution** (§5.2) — [`AddressRanges`]: per-thread
//!   per-variable-bin \[min,max\] accessed ranges, scoped to the whole program
//!   and to individual parallel regions.
//! * **First-touch pinpointing** (§6) — page-protection traps recorded as
//!   [`FirstTouchRecord`]s with both code- and data-centric attribution.
//!
//! The entry point is [`NumaProfiler`]: construct it with a machine, a
//! [`ProfilerConfig`] (choosing one of the six sampling mechanisms), hand it
//! to a `numa_sim::Program` as its monitor, and call
//! [`NumaProfiler::into_profile`] afterwards. The offline analyzer lives in
//! the `numa-analysis` crate.

pub mod addrcentric;
pub mod cct;
pub mod config;
pub mod datacentric;
pub mod firsttouch;
pub mod metrics;
pub mod profile;
pub mod profiler;
pub mod trace;

pub use addrcentric::{AddressRanges, RangeKey, RangeScope, RangeStat};
pub use cct::{Cct, CctNode, NodeId, NodeKey, ROOT};
pub use config::{ProfilerConfig, BINS_ENV_VAR};
pub use datacentric::{bins_for, VarId, VarRecord, VariableRegistry};
pub use firsttouch::{FirstTouchGranularity, FirstTouchRecord, FirstTouchStore};
pub use metrics::{MetricSet, LPI_THRESHOLD};
pub use profile::{NumaProfile, ThreadProfile};
pub use profiler::{finish_profile, NumaProfiler};
pub use trace::{render_timeline, Trace, TracePoint};
