//! The online profiler (§7.1): the `Monitor` implementation that drives a
//! sampling mechanism, attributes samples to code / data / address ranges,
//! and pinpoints first touches.

use crate::addrcentric::AddressRanges;
use crate::cct::Cct;
use crate::config::ProfilerConfig;
use crate::datacentric::{bins_for, VarId, VariableRegistry};
use crate::firsttouch::{FirstTouchGranularity, FirstTouchRecord, FirstTouchStore};
use crate::metrics::MetricSet;
use crate::profile::{NumaProfile, ThreadProfile};
use crate::trace::Trace;
use numa_machine::{CpuId, DomainId, Machine};
use numa_sampling::{Capabilities, SamplingMechanism};
use numa_sim::{
    AllocInfo, Frame, FrameKind, FuncRegistry, MemoryEvent, Monitor, PageFaultEvent, VarKind,
};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cycles of handler work per first-touch fault (attribution + `mprotect`
/// restore), on top of the engine's delivery cost.
const FAULT_HANDLER_COST: u64 = 1500;

/// Per-frame cost of unwinding a call stack inside a sample handler.
const UNWIND_COST_PER_FRAME: u64 = 40;

struct ThreadLocal {
    cpu: CpuId,
    domain: DomainId,
    mechanism: Box<dyn SamplingMechanism>,
    cct: Cct,
    ranges: AddressRanges,
    totals: MetricSet,
    var_metrics: HashMap<VarId, MetricSet>,
    instructions: u64,
    stack_underflows: u64,
    trace: Option<Trace>,
}

/// The NUMA profiler. Create one per run, hand it to the engine as the
/// program's [`Monitor`], then call [`NumaProfiler::into_profile`] to obtain
/// the serialized measurement data.
pub struct NumaProfiler {
    machine: Machine,
    config: ProfilerConfig,
    caps: Capabilities,
    threads: Vec<Mutex<ThreadLocal>>,
    vars: VariableRegistry,
    first_touch: FirstTouchStore,
}

impl NumaProfiler {
    pub fn new(machine: Machine, config: ProfilerConfig, num_threads: usize) -> Self {
        let domains = machine.topology().domains();
        let caps = Capabilities::for_kind(config.mechanism.kind);
        let threads = (0..num_threads)
            .map(|_| {
                Mutex::new(ThreadLocal {
                    cpu: CpuId(0),
                    domain: DomainId(0),
                    mechanism: config.mechanism.build(),
                    cct: Cct::new(domains),
                    ranges: AddressRanges::new(),
                    totals: MetricSet::new(domains),
                    var_metrics: HashMap::new(),
                    instructions: 0,
                    stack_underflows: 0,
                    trace: config.trace_interval.map(Trace::new),
                })
            })
            .collect();
        NumaProfiler {
            machine,
            config,
            caps,
            threads,
            vars: VariableRegistry::new(),
            first_touch: FirstTouchStore::new(),
        }
    }

    pub fn config(&self) -> &ProfilerConfig {
        &self.config
    }

    pub fn capabilities(&self) -> Capabilities {
        self.caps
    }

    /// Whether a variable kind is monitored under the current config.
    fn monitored(&self, kind: VarKind) -> bool {
        match kind {
            VarKind::Heap => true,
            VarKind::Static => self.config.monitor_static,
            VarKind::Stack => self.config.monitor_stack,
        }
    }

    /// Innermost parallel-region frame on a stack (for per-region
    /// address-centric scoping).
    fn innermost_region(stack: &[Frame]) -> Option<numa_sim::FuncId> {
        stack
            .iter()
            .rev()
            .find(|f| f.kind == FrameKind::ParallelRegion)
            .map(|f| f.func)
    }

    /// Approximate resident bytes of all profiler data structures — the
    /// quantity the paper bounds at 40 MB (§8).
    pub fn footprint_bytes(&self) -> usize {
        let threads: usize = self
            .threads
            .iter()
            .map(|t| {
                let t = t.lock();
                t.cct.footprint_bytes() + t.ranges.footprint_bytes() + t.var_metrics.len() * 256
            })
            .sum();
        threads + self.vars.footprint_bytes() + self.first_touch.len() * 128
    }

    /// Consume the profiler, producing the serializable profile.
    /// `funcs` must be the registry of the program that ran (it owns the
    /// `FuncId → name` mapping).
    pub fn into_profile(self, funcs: &FuncRegistry) -> NumaProfile {
        let func_names: Vec<String> = (0..funcs.len())
            .map(|i| funcs.name(numa_sim::FuncId(i as u32)).to_string())
            .collect();
        let threads = self
            .threads
            .into_iter()
            .enumerate()
            .map(|(tid, t)| {
                let t = t.into_inner();
                let mut var_metrics: Vec<(VarId, MetricSet)> = t.var_metrics.into_iter().collect();
                var_metrics.sort_by_key(|(v, _)| *v);
                ThreadProfile {
                    tid,
                    cpu: t.cpu,
                    domain: t.domain,
                    cct: t.cct,
                    totals: t.totals,
                    instructions: t.instructions,
                    numa_events: t.mechanism.event_count(),
                    var_metrics,
                    ranges: t.ranges.into_sorted_vec(),
                    trace: t.trace.unwrap_or_default(),
                    stack_underflows: t.stack_underflows,
                }
            })
            .collect();
        NumaProfile {
            mechanism: self.config.mechanism.kind,
            capabilities: self.caps,
            domains: self.machine.topology().domains(),
            machine_name: self.machine.topology().name().to_string(),
            func_names,
            vars: self.vars.all(),
            threads,
            first_touches: self.first_touch.into_records(),
        }
    }
}

impl Monitor for NumaProfiler {
    fn on_thread_start(&self, tid: usize, cpu: CpuId, domain: DomainId) {
        let mut t = self.threads[tid].lock();
        t.cpu = cpu;
        t.domain = domain;
    }

    fn on_alloc(&self, info: &AllocInfo<'_>, stack: &[Frame]) -> u64 {
        if !self.monitored(info.kind) {
            return 0;
        }
        let bins = bins_for(
            info.bytes,
            self.config.bins,
            self.config.bin_threshold_pages,
        );
        self.vars.register(
            info.name,
            info.addr,
            info.bytes,
            info.kind,
            info.tid,
            stack.to_vec(),
            bins,
        );
        if self.config.first_touch {
            let pages = self
                .machine
                .page_map()
                .protect_extent(info.addr, info.bytes);
            return pages * self.config.protect_cost_per_page + 50;
        }
        0
    }

    fn on_free(&self, _tid: usize, addr: u64) -> u64 {
        self.vars.mark_freed(addr);
        20
    }

    fn on_compute(&self, tid: usize, n: u64, stack: &[Frame]) -> u64 {
        let mut t = self.threads[tid].lock();
        t.instructions += n;
        let out = t.mechanism.on_compute(n);
        if out.instruction_samples > 0 {
            let node = t.cct.resolve(stack, 0);
            t.cct
                .node_mut(node)
                .metrics
                .add_instruction_samples(out.instruction_samples);
            t.totals.add_instruction_samples(out.instruction_samples);
        }
        out.overhead
    }

    fn on_access(&self, ev: &MemoryEvent, stack: &[Frame]) -> u64 {
        let mut t = self.threads[ev.tid].lock();
        t.instructions += 1;
        let out = t.mechanism.on_access(ev);
        let Some(sample) = out.sample else {
            return out.overhead;
        };

        // The profiler's own work per sample: unwind + move_pages query.
        let attribution_cost = UNWIND_COST_PER_FRAME * stack.len() as u64;

        // Data address → NUMA domain, via the simulated move_pages (§4.1).
        let home = self.machine.domain_of_addr(ev.addr);

        // Code-centric: attribute to the full calling context + line.
        let node = t.cct.resolve(stack, sample.line);
        t.cct
            .node_mut(node)
            .metrics
            .add_sample(&sample, home, ev.first_touch_page);
        t.totals.add_sample(&sample, home, ev.first_touch_page);

        // Data- and address-centric: attribute to the variable and its bin.
        if let Some(var) = self.vars.lookup(ev.addr) {
            let domains = self.machine.topology().domains();
            t.var_metrics
                .entry(var)
                .or_insert_with(|| MetricSet::new(domains))
                .add_sample(&sample, home, ev.first_touch_page);
            let bin = self.vars.with_record(var, |r| r.bin_of(ev.addr));
            let region = Self::innermost_region(stack);
            t.ranges.record(var, bin, region, &sample);
        }

        // Trace-based measurement: snapshot cumulative counters when the
        // interval elapses.
        let t = &mut *t;
        if let Some(trace) = &mut t.trace {
            trace.offer(
                ev.clock,
                t.totals.samples_mem,
                t.totals.m_remote,
                t.totals.latency_remote,
            );
        }

        out.overhead + attribution_cost
    }

    fn on_stack_underflow(&self, tid: usize) {
        self.threads[tid].lock().stack_underflows += 1;
    }

    fn on_page_fault(&self, fault: &PageFaultEvent, stack: &[Frame]) -> u64 {
        let Some(var) = self.vars.lookup(fault.addr) else {
            // Fault on an unmonitored region (should not happen: only the
            // profiler installs protection). Charge handler cost anyway.
            return FAULT_HANDLER_COST;
        };
        if self.config.first_touch_granularity == FirstTouchGranularity::Variable {
            // §6: restore permissions for the variable's monitored pages.
            let (addr, bytes) = self.vars.with_record(var, |r| (r.addr, r.bytes));
            self.machine.page_map().unprotect_extent(addr, bytes);
        }
        self.first_touch.record(FirstTouchRecord {
            var,
            tid: fault.tid,
            cpu: fault.cpu,
            domain: fault.thread_domain,
            addr: fault.addr,
            is_store: fault.is_store,
            line: fault.line,
            path: stack.to_vec(),
        });
        FAULT_HANDLER_COST + UNWIND_COST_PER_FRAME * stack.len() as u64
    }
}

/// Convenience for the common tear-down sequence: finish the program,
/// recover unique ownership of the profiler, and produce the profile.
///
/// # Panics
/// Panics if other clones of the profiler `Arc` are still alive.
pub fn finish_profile(
    mut program: numa_sim::Program,
    profiler: std::sync::Arc<NumaProfiler>,
) -> NumaProfile {
    program.finish();
    let funcs = program.into_func_registry();
    let profiler = std::sync::Arc::try_unwrap(profiler)
        .ok()
        .expect("profiler Arc must be uniquely owned after the program is dropped");
    profiler.into_profile(&funcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{MachinePreset, PlacementPolicy};
    use numa_sampling::{MechanismConfig, MechanismKind};
    use numa_sim::{ExecMode, Program};
    use std::sync::Arc;

    fn run_simple(kind: MechanismKind, period: u64) -> NumaProfile {
        let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let config = ProfilerConfig::new(MechanismConfig::for_tests(kind, period));
        let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 4));
        let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
        let mut base = 0;
        p.serial("main", |ctx| {
            base = ctx.alloc("data", 1 << 20, PlacementPolicy::FirstTouch);
            // Master initializes every page (classic first-touch pattern:
            // the whole array lands in domain 0).
            ctx.store_range(base, (1 << 20) / 64, 64);
        });
        p.parallel("work", |tid, ctx| {
            let chunk = (1 << 20) / 4u64;
            ctx.load_range(base + tid as u64 * chunk, 256, 64);
            ctx.compute(1000);
        });
        finish_profile(p, profiler)
    }

    #[test]
    fn profile_contains_samples_and_variables() {
        let profile = run_simple(MechanismKind::SoftIbs, 8);
        assert_eq!(profile.threads.len(), 4);
        assert!(profile.total_instruction_samples() > 0);
        let var = profile.var_by_name("data").unwrap();
        assert_eq!(var.bytes, 1 << 20);
        assert_eq!(var.bins, 5);
        assert_eq!(var.kind, VarKind::Heap);
    }

    #[test]
    fn first_touch_is_pinpointed_to_master_init() {
        let profile = run_simple(MechanismKind::SoftIbs, 64);
        assert!(!profile.first_touches.is_empty());
        let ft = &profile.first_touches[0];
        assert_eq!(ft.tid, 0, "master thread initialized the variable");
        assert_eq!(ft.domain, DomainId(0));
        let names: Vec<&str> = ft.path.iter().map(|f| profile.func_name(f.func)).collect();
        assert_eq!(names, vec!["main"], "fault attributed to the init code");
        // Variable granularity: exactly one fault for one initializer.
        assert_eq!(profile.first_touches.len(), 1);
    }

    #[test]
    fn remote_accesses_show_up_in_worker_threads() {
        let profile = run_simple(MechanismKind::SoftIbs, 4);
        // Data is first-touched by thread 0 (domain 0); workers in other
        // domains must see M_r > 0.
        let t1 = &profile.threads[1];
        assert!(t1.totals.m_remote > 0, "worker 1 sampled remote accesses");
        assert_eq!(t1.totals.m_local, 0, "nothing is local to domain 1");
        // And thread 0's samples are all local.
        let t0 = &profile.threads[0];
        assert_eq!(t0.totals.m_remote, 0);
        assert!(t0.totals.m_local > 0);
    }

    #[test]
    fn per_domain_counts_point_at_domain_zero() {
        let profile = run_simple(MechanismKind::SoftIbs, 4);
        for t in &profile.threads {
            let d0 = t.totals.per_domain[0];
            let rest: u64 = t.totals.per_domain[1..].iter().sum();
            assert_eq!(rest, 0, "all data lives in domain 0");
            assert_eq!(d0, t.totals.resolved_samples());
        }
    }

    #[test]
    fn address_ranges_cover_each_threads_chunk() {
        let profile = run_simple(MechanismKind::SoftIbs, 1);
        let var = profile.var_by_name("data").unwrap();
        // Thread 2 reads [2*chunk, 2*chunk + 256*64): its recorded ranges
        // must stay inside that window.
        let chunk = (1u64 << 20) / 4;
        let lo = var.addr + 2 * chunk;
        let hi = lo + 256 * 64;
        let t2 = &profile.threads[2];
        let mut saw = false;
        for (k, s) in &t2.ranges {
            if k.var == var.id {
                // Ignore serial-region samples (thread 2 has none anyway).
                assert!(s.min_addr >= lo && s.max_addr < hi);
                saw = true;
            }
        }
        assert!(saw, "thread 2 recorded address ranges");
    }

    #[test]
    fn ibs_counts_instruction_samples_from_compute() {
        let profile = run_simple(MechanismKind::Ibs, 100);
        // compute(1000) per thread guarantees instruction samples beyond
        // memory ones.
        let total_mem: u64 = profile.threads.iter().map(|t| t.totals.samples_mem).sum();
        assert!(profile.total_instruction_samples() > total_mem);
    }

    #[test]
    fn profile_roundtrips_through_json() {
        let profile = run_simple(MechanismKind::SoftIbs, 16);
        let json = profile.to_json();
        let back = NumaProfile::from_json(&json).unwrap();
        assert_eq!(back.threads.len(), profile.threads.len());
        assert_eq!(back.vars.len(), profile.vars.len());
        assert_eq!(
            back.threads[0].totals.samples_mem,
            profile.threads[0].totals.samples_mem
        );
    }

    #[test]
    fn footprint_stays_small() {
        let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::SoftIbs, 16));
        let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 8));
        let mut p = Program::new(machine, 8, ExecMode::Sequential, profiler.clone());
        let mut base = 0;
        p.serial("main", |ctx| {
            base = ctx.alloc("big", 8 << 20, PlacementPolicy::FirstTouch);
            ctx.store_range(base, 4096, 64);
        });
        p.parallel("work", |tid, ctx| {
            let chunk = (8u64 << 20) / 8;
            ctx.load_range(base + tid as u64 * chunk, 2048, 64);
        });
        // §8: aggregate runtime footprint below 40 MB.
        assert!(
            profiler.footprint_bytes() < 40 * 1024 * 1024,
            "footprint {} bytes",
            profiler.footprint_bytes()
        );
    }

    #[test]
    fn static_and_stack_variables_can_be_monitored() {
        let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::SoftIbs, 1));
        let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 2));
        let mut p = Program::new(machine, 2, ExecMode::Sequential, profiler.clone());
        p.serial("main", |ctx| {
            let s = ctx.alloc_kind(
                "nodelist",
                1 << 20,
                PlacementPolicy::FirstTouch,
                VarKind::Static,
            );
            let k = ctx.alloc_kind(
                "frame_buf",
                64 * 1024,
                PlacementPolicy::FirstTouch,
                VarKind::Stack,
            );
            ctx.store_range(s, 64, 64);
            ctx.store_range(k, 64, 64);
        });
        let profile = finish_profile(p, profiler);
        let s = profile.var_by_name("nodelist").unwrap();
        assert_eq!(s.kind, VarKind::Static);
        let k = profile.var_by_name("frame_buf").unwrap();
        assert_eq!(k.kind, VarKind::Stack);
        // Both received data-centric samples.
        let t0 = &profile.threads[0];
        assert!(t0
            .var_metrics
            .iter()
            .any(|(v, m)| *v == s.id && m.samples_mem > 0));
        assert!(t0
            .var_metrics
            .iter()
            .any(|(v, m)| *v == k.id && m.samples_mem > 0));
    }

    #[test]
    fn page_granularity_records_every_page() {
        let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::SoftIbs, 1024))
            .with_first_touch_granularity(FirstTouchGranularity::Page);
        let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 1));
        let mut p = Program::new(machine, 1, ExecMode::Sequential, profiler.clone());
        p.serial("main", |ctx| {
            let a = ctx.alloc("arr", 8 * 4096, PlacementPolicy::FirstTouch);
            for page in 0..8u64 {
                ctx.store(a + page * 4096, 8);
            }
        });
        let profile = finish_profile(p, profiler);
        assert_eq!(profile.first_touches.len(), 8);
    }
}
