//! Calling context trees (CCTs).
//!
//! HPCToolkit attributes every sample to the full calling context in which
//! it occurred (§5.1). Each thread builds its own CCT online; the offline
//! analyzer merges them. Nodes are identified by their parent plus a
//! [`NodeKey`]: a call-stack frame, or a source-line leaf for
//! statement-level attribution.

use crate::metrics::MetricSet;
use numa_sim::Frame;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a CCT node within one tree.
pub type NodeId = u32;

/// The root's id.
pub const ROOT: NodeId = 0;

/// What distinguishes a node from its siblings.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NodeKey {
    Root,
    /// A call-stack frame (function, loop, or parallel region).
    Frame(Frame),
    /// A source-line leaf under the innermost frame (statement-level
    /// attribution, like HPCToolkit's line scopes).
    Line(u32),
}

/// One node: key, parent link, and exclusive metrics (samples attributed
/// exactly here; inclusive values are computed by the analyzer).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CctNode {
    pub key: NodeKey,
    pub parent: NodeId,
    pub metrics: MetricSet,
}

/// An append-only calling context tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cct {
    nodes: Vec<CctNode>,
    domains: usize,
    #[serde(skip)]
    index: HashMap<(NodeId, NodeKey), NodeId>,
}

impl Cct {
    pub fn new(domains: usize) -> Self {
        Cct {
            nodes: vec![CctNode {
                key: NodeKey::Root,
                parent: ROOT,
                metrics: MetricSet::new(domains),
            }],
            domains,
            index: HashMap::new(),
        }
    }

    /// Rebuild a tree from its serialized parts: the node vector (root
    /// first, parents preceding children) plus the domain count. Used by
    /// decoders that bypass serde (the binary profile codec). The lookup
    /// index is rebuilt eagerly, so the tree is immediately resolvable.
    /// Returns `None` when the parts cannot form a valid tree: no root,
    /// a non-`Root` first node, or a parent reference at or past its
    /// node's own id (the append-only invariant every consumer relies
    /// on).
    pub fn from_parts(nodes: Vec<CctNode>, domains: usize) -> Option<Self> {
        match nodes.first() {
            Some(root) if root.key == NodeKey::Root && root.parent == ROOT => {}
            _ => return None,
        }
        for (i, n) in nodes.iter().enumerate().skip(1) {
            if n.parent as usize >= i {
                return None;
            }
        }
        let mut cct = Cct {
            nodes,
            domains,
            index: HashMap::new(),
        };
        cct.rebuild_index();
        Some(cct)
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        false // a CCT always has its root
    }

    pub fn domains(&self) -> usize {
        self.domains
    }

    pub fn node(&self, id: NodeId) -> &CctNode {
        &self.nodes[id as usize]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut CctNode {
        &mut self.nodes[id as usize]
    }

    pub fn nodes(&self) -> &[CctNode] {
        &self.nodes
    }

    /// Find or create the child of `parent` with `key`.
    pub fn child(&mut self, parent: NodeId, key: NodeKey) -> NodeId {
        if let Some(&id) = self.index.get(&(parent, key)) {
            return id;
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(CctNode {
            key,
            parent,
            metrics: MetricSet::new(self.domains),
        });
        self.index.insert((parent, key), id);
        id
    }

    /// Resolve a call stack (outermost first) plus an optional line marker
    /// to a node, creating missing nodes. This is the per-sample hot path.
    pub fn resolve(&mut self, stack: &[Frame], line: u32) -> NodeId {
        let mut cur = ROOT;
        for &f in stack {
            cur = self.child(cur, NodeKey::Frame(f));
        }
        if line != 0 {
            cur = self.child(cur, NodeKey::Line(line));
        }
        cur
    }

    /// Path from the root to `id`, inclusive.
    pub fn path_to(&self, id: NodeId) -> Vec<NodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while cur != ROOT {
            cur = self.nodes[cur as usize].parent;
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Children of `id` (linear scan; analysis-time only).
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        (1..self.nodes.len() as NodeId)
            .filter(|&n| self.nodes[n as usize].parent == id && n != ROOT)
            .collect()
    }

    /// Inclusive metrics of `id`: its own plus all descendants'.
    pub fn inclusive(&self, id: NodeId) -> MetricSet {
        // Children have larger ids than parents (append-only creation), so
        // one reverse pass folds leaves upward.
        let n = self.nodes.len();
        let mut acc: Vec<MetricSet> = self.nodes.iter().map(|nd| nd.metrics.clone()).collect();
        for i in (1..n).rev() {
            let parent = self.nodes[i].parent as usize;
            let child = acc[i].clone();
            acc[parent].merge(&child);
        }
        // `acc[id]` now holds inclusive metrics only if id is an ancestor
        // chain root of the folded region — the fold above pushes every
        // node into its parent, so acc[id] is exactly inclusive(id).
        acc[id as usize].clone()
    }

    /// Rebuild the lookup index after deserialization (serde skips it).
    pub fn rebuild_index(&mut self) {
        self.index.clear();
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            self.index.insert((n.parent, n.key), i as NodeId);
        }
    }

    /// Approximate resident bytes (for the 40 MB footprint check).
    pub fn footprint_bytes(&self) -> usize {
        self.nodes.len() * (std::mem::size_of::<CctNode>() + self.domains * 8)
            + self.index.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_sim::{FrameKind, FuncId};

    fn f(id: u32) -> Frame {
        Frame {
            func: FuncId(id),
            kind: FrameKind::Function,
        }
    }

    #[test]
    fn resolve_creates_each_path_once() {
        let mut cct = Cct::new(2);
        let a = cct.resolve(&[f(1), f(2)], 0);
        let b = cct.resolve(&[f(1), f(2)], 0);
        assert_eq!(a, b);
        assert_eq!(cct.len(), 3); // root + 2 frames
        let c = cct.resolve(&[f(1), f(3)], 0);
        assert_ne!(a, c);
        assert_eq!(cct.len(), 4); // shares node for f(1)
    }

    #[test]
    fn line_leaves_are_distinct() {
        let mut cct = Cct::new(2);
        let a = cct.resolve(&[f(1)], 10);
        let b = cct.resolve(&[f(1)], 20);
        let c = cct.resolve(&[f(1)], 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(cct.node(a).parent, c);
    }

    #[test]
    fn path_to_walks_to_root() {
        let mut cct = Cct::new(2);
        let leaf = cct.resolve(&[f(1), f(2), f(3)], 7);
        let path = cct.path_to(leaf);
        assert_eq!(path[0], ROOT);
        assert_eq!(*path.last().unwrap(), leaf);
        assert_eq!(path.len(), 5); // root + 3 frames + line
    }

    #[test]
    fn inclusive_sums_subtree() {
        let mut cct = Cct::new(2);
        let parent = cct.resolve(&[f(1)], 0);
        let child1 = cct.resolve(&[f(1), f(2)], 0);
        let child2 = cct.resolve(&[f(1), f(3)], 0);
        cct.node_mut(parent).metrics.add_instruction_samples(1);
        cct.node_mut(child1).metrics.add_instruction_samples(10);
        cct.node_mut(child2).metrics.add_instruction_samples(100);
        assert_eq!(cct.inclusive(parent).samples_instr, 111);
        assert_eq!(cct.inclusive(child1).samples_instr, 10);
        assert_eq!(cct.inclusive(ROOT).samples_instr, 111);
    }

    #[test]
    fn children_enumerates_direct_descendants() {
        let mut cct = Cct::new(2);
        let p = cct.resolve(&[f(1)], 0);
        let a = cct.resolve(&[f(1), f(2)], 0);
        let b = cct.resolve(&[f(1), f(3)], 0);
        cct.resolve(&[f(1), f(3), f(4)], 0); // grandchild, not direct
        let mut kids = cct.children(p);
        kids.sort();
        assert_eq!(kids, vec![a, b]);
    }

    #[test]
    fn rebuild_index_restores_resolution() {
        let mut cct = Cct::new(2);
        let a = cct.resolve(&[f(1), f(2)], 5);
        let json = serde_json::to_string(&cct).unwrap();
        let mut back: Cct = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        let b = back.resolve(&[f(1), f(2)], 5);
        assert_eq!(a, b);
        assert_eq!(back.len(), cct.len());
    }
}
