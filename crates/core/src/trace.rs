//! Trace-based (time-series) NUMA measurements — the paper's future-work
//! item #3: "collect trace-based measurements to study time-varying NUMA
//! patterns in addition to profiles."
//!
//! Each thread appends a [`TracePoint`] whenever at least
//! `interval_cycles` of its virtual clock have passed since the previous
//! point. Points carry *cumulative* counters; the analyzer differences
//! consecutive points to recover per-interval rates, exposing phase
//! behaviour (e.g. the serial initialization's local-store burst followed
//! by the solve phase's remote-read plateau).

use serde::{Deserialize, Serialize};

/// One snapshot of a thread's cumulative NUMA counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Thread virtual clock at the snapshot.
    pub clock: u64,
    /// Cumulative sampled accesses so far.
    pub samples: u64,
    /// Cumulative remote-homed samples (`M_r`).
    pub m_remote: u64,
    /// Cumulative sampled remote latency (`l^s_NUMA`).
    pub latency_remote: u64,
}

/// Per-thread trace recorder.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    interval: u64,
    points: Vec<TracePoint>,
}

impl Trace {
    pub fn new(interval_cycles: u64) -> Self {
        assert!(interval_cycles > 0);
        Trace {
            interval: interval_cycles,
            points: Vec::new(),
        }
    }

    /// Rebuild a trace from its serialized parts. Used by decoders that
    /// bypass serde (the binary profile codec); unlike [`Trace::new`] a
    /// zero interval is accepted, because it is exactly what a default
    /// (never-enabled) trace round-trips through.
    pub fn from_parts(interval: u64, points: Vec<TracePoint>) -> Self {
        Trace { interval, points }
    }

    /// The recording interval in cycles (0 when tracing was never
    /// enabled).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Offer the current cumulative counters; records a point if the
    /// interval elapsed (or it is the first point).
    pub fn offer(&mut self, clock: u64, samples: u64, m_remote: u64, latency_remote: u64) {
        let due = match self.points.last() {
            None => true,
            Some(last) => clock.saturating_sub(last.clock) >= self.interval,
        };
        if due {
            self.points.push(TracePoint {
                clock,
                samples,
                m_remote,
                latency_remote,
            });
        }
    }

    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Per-interval remote fraction series: (interval-end clock,
    /// ΔM_r / Δsamples).
    pub fn remote_fraction_series(&self) -> Vec<(u64, f64)> {
        self.points
            .windows(2)
            .map(|w| {
                let ds = w[1].samples - w[0].samples;
                let dr = w[1].m_remote - w[0].m_remote;
                (
                    w[1].clock,
                    if ds == 0 { 0.0 } else { dr as f64 / ds as f64 },
                )
            })
            .collect()
    }

    pub fn footprint_bytes(&self) -> usize {
        self.points.len() * std::mem::size_of::<TracePoint>()
    }
}

/// Render a per-thread remote-fraction timeline as a sparkline-style row
/// per thread ('·' = local, '▁▂…█' = increasing remote fraction).
pub fn render_timeline(traces: &[(usize, &Trace)], width: usize) -> String {
    const GLYPHS: [char; 9] = ['·', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut out = String::new();
    out.push_str("remote-fraction timeline (columns = equal slices of each thread's run)\n");
    for (tid, trace) in traces {
        let series = trace.remote_fraction_series();
        out.push_str(&format!("t{tid:<3} "));
        if series.is_empty() {
            out.push_str("(no trace)\n");
            continue;
        }
        // Resample the series to `width` columns.
        for col in 0..width {
            let idx = col * series.len() / width;
            let (_, frac) = series[idx.min(series.len() - 1)];
            let g = (frac * (GLYPHS.len() - 1) as f64).round() as usize;
            out.push(GLYPHS[g.min(GLYPHS.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_at_interval_boundaries() {
        let mut t = Trace::new(100);
        t.offer(0, 0, 0, 0);
        t.offer(50, 5, 1, 10); // too soon
        t.offer(120, 12, 3, 30);
        t.offer(199, 15, 4, 40); // too soon
        t.offer(230, 20, 8, 80);
        assert_eq!(t.len(), 3);
        assert_eq!(t.points()[1].clock, 120);
    }

    #[test]
    fn remote_fraction_series_differences_cumulatives() {
        let mut t = Trace::new(1);
        t.offer(0, 0, 0, 0);
        t.offer(10, 10, 2, 0);
        t.offer(20, 20, 10, 0);
        let s = t.remote_fraction_series();
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 0.2).abs() < 1e-12);
        assert!((s[1].1 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_yields_zero_fraction() {
        let mut t = Trace::new(1);
        t.offer(0, 5, 1, 0);
        t.offer(10, 5, 1, 0);
        assert_eq!(t.remote_fraction_series(), vec![(10, 0.0)]);
    }

    #[test]
    fn timeline_renders_one_row_per_thread() {
        let mut a = Trace::new(1);
        for i in 0..10u64 {
            a.offer(i * 10, i * 10, i * 9, 0); // mostly remote
        }
        let mut b = Trace::new(1);
        for i in 0..10u64 {
            b.offer(i * 10, i * 10, 0, 0); // all local
        }
        let s = render_timeline(&[(0, &a), (1, &b)], 16);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("t0"));
        assert!(
            lines[2].contains('·'),
            "local thread renders dots: {}",
            lines[2]
        );
        assert!(lines[1].contains('█') || lines[1].contains('▇'));
    }
}
