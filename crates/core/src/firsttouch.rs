//! First-touch pinpointing (§6).
//!
//! At allocation time the profiler revokes access to the pages of each
//! monitored variable (only pages fully inside the variable's extent, per
//! §6). The engine delivers a synchronous fault — the simulated SIGSEGV —
//! on the first access; the handler records both the code-centric context
//! (the faulting call path) and the data-centric identity (which variable,
//! which address) before execution resumes. Multiple threads initializing a
//! variable concurrently each record their own first touch; the analyzer
//! merges them per variable postmortem.

use crate::datacentric::VarId;
use numa_machine::{CpuId, DomainId};
use numa_sim::Frame;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// How much of a variable to unprotect when its first fault arrives.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FirstTouchGranularity {
    /// The paper's behaviour: the handler restores permissions for the
    /// variable's monitored pages, so each variable faults O(#concurrent
    /// initializers) times — cheap, and enough to locate the
    /// initialization code.
    Variable,
    /// Leave other pages protected: every page faults once, yielding a
    /// full per-page first-touch map (more detail, more overhead).
    Page,
}

/// One recorded first touch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FirstTouchRecord {
    pub var: VarId,
    pub tid: usize,
    pub cpu: CpuId,
    /// Domain of the touching thread — under the first-touch policy, where
    /// the page went.
    pub domain: DomainId,
    /// Faulting address.
    pub addr: u64,
    pub is_store: bool,
    pub line: u32,
    /// Full calling context of the touch.
    pub path: Vec<Frame>,
}

/// Concurrent store of first-touch records.
#[derive(Default)]
pub struct FirstTouchStore {
    records: Mutex<Vec<FirstTouchRecord>>,
}

impl FirstTouchStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&self, rec: FirstTouchRecord) {
        self.records.lock().push(rec);
    }

    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn snapshot(&self) -> Vec<FirstTouchRecord> {
        self.records.lock().clone()
    }

    pub fn into_records(self) -> Vec<FirstTouchRecord> {
        self.records.into_inner()
    }

    /// Records for one variable (the postmortem per-variable merge).
    pub fn for_var(&self, var: VarId) -> Vec<FirstTouchRecord> {
        self.records
            .lock()
            .iter()
            .filter(|r| r.var == var)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(var: u32, tid: usize) -> FirstTouchRecord {
        FirstTouchRecord {
            var: VarId(var),
            tid,
            cpu: CpuId(tid as u16),
            domain: DomainId(0),
            addr: 0x1000,
            is_store: true,
            line: 0,
            path: Vec::new(),
        }
    }

    #[test]
    fn records_accumulate_per_var() {
        let s = FirstTouchStore::new();
        s.record(rec(0, 0));
        s.record(rec(1, 1));
        s.record(rec(0, 2));
        assert_eq!(s.len(), 3);
        assert_eq!(s.for_var(VarId(0)).len(), 2);
        assert_eq!(s.for_var(VarId(1)).len(), 1);
        assert_eq!(s.for_var(VarId(9)).len(), 0);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let s = Arc::new(FirstTouchStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    s.record(rec(0, t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 800);
    }
}
