//! Address-centric attribution (§5.2).
//!
//! For every sampled access the profiler updates the \[min,max\] address
//! bounds the accessing thread has touched — per variable *bin* (so hot
//! sub-ranges are distinguishable) and per scope (whole program, plus the
//! innermost parallel region, so an analyst can drill from Figure 4's
//! aggregate view into Figure 5's per-region view). Ranges are weighted by
//! sample count and latency, addressing the paper's point that access
//! ranges in different contexts should not get equal weight.

use crate::datacentric::VarId;
use numa_sampling::Sample;
use numa_sim::FuncId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Scope of a range record: whole program or one parallel region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RangeScope {
    Program,
    Region(FuncId),
}

/// Key of one address-range accumulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RangeKey {
    pub var: VarId,
    pub bin: u16,
    pub scope: RangeScope,
}

/// Accumulated \[min,max\] bounds plus weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeStat {
    pub min_addr: u64,
    pub max_addr: u64,
    /// Samples contributing to this range.
    pub count: u64,
    /// Accumulated sampled latency (0 for mechanisms without latency).
    pub latency: u64,
    /// The remote (NUMA) part of `latency` — what the paper's weighting
    /// guidance uses to pick which contexts matter (§5.2).
    pub latency_remote: u64,
}

impl RangeStat {
    fn new(addr: u64, latency: u64, latency_remote: u64) -> Self {
        RangeStat {
            min_addr: addr,
            max_addr: addr,
            count: 1,
            latency,
            latency_remote,
        }
    }

    /// Fold in one access.
    fn update(&mut self, addr: u64, latency: u64, latency_remote: u64) {
        self.min_addr = self.min_addr.min(addr);
        self.max_addr = self.max_addr.max(addr);
        self.count += 1;
        self.latency += latency;
        self.latency_remote += latency_remote;
    }

    /// The \[min,max\] merge used when combining thread profiles (§7.2's
    /// customized reduction).
    pub fn merge(&mut self, other: &RangeStat) {
        self.min_addr = self.min_addr.min(other.min_addr);
        self.max_addr = self.max_addr.max(other.max_addr);
        self.count += other.count;
        self.latency += other.latency;
        self.latency_remote += other.latency_remote;
    }
}

/// One thread's address-centric profile.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AddressRanges {
    ranges: HashMap<RangeKey, RangeStat>,
}

impl AddressRanges {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sampled access to `var`/`bin`, inside `region` if the
    /// sample's call path contains a parallel region.
    ///
    /// Samples without an effective address (a mechanism that attributed
    /// the access to a variable without capturing the address) carry no
    /// address-centric information and are skipped rather than panicking.
    pub fn record(&mut self, var: VarId, bin: u16, region: Option<FuncId>, sample: &Sample) {
        let Some(addr) = sample.addr else {
            return;
        };
        let latency = sample.latency.unwrap_or(0) as u64;
        let latency_remote = if sample.level.is_some_and(|l| l.is_remote()) {
            latency
        } else {
            0
        };
        let mut upsert = |scope| {
            self.ranges
                .entry(RangeKey { var, bin, scope })
                .and_modify(|s| s.update(addr, latency, latency_remote))
                .or_insert_with(|| RangeStat::new(addr, latency, latency_remote));
        };
        upsert(RangeScope::Program);
        if let Some(r) = region {
            upsert(RangeScope::Region(r));
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&RangeKey, &RangeStat)> {
        self.ranges.iter()
    }

    pub fn get(&self, key: &RangeKey) -> Option<&RangeStat> {
        self.ranges.get(key)
    }

    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Drain into a sorted vec for the serialized profile.
    pub fn into_sorted_vec(self) -> Vec<(RangeKey, RangeStat)> {
        let mut v: Vec<_> = self.ranges.into_iter().collect();
        v.sort_by_key(|(k, _)| (k.var, k.bin, scope_order(k.scope)));
        v
    }

    /// Approximate resident bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.ranges.len()
            * (std::mem::size_of::<RangeKey>() + std::mem::size_of::<RangeStat>() + 16)
    }
}

fn scope_order(s: RangeScope) -> u64 {
    match s {
        RangeScope::Program => 0,
        RangeScope::Region(f) => 1 + f.0 as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{CpuId, DomainId};

    fn sample(addr: u64, latency: Option<u32>) -> Sample {
        Sample {
            tid: 0,
            cpu: CpuId(0),
            thread_domain: DomainId(0),
            addr: Some(addr),
            size: Some(8),
            is_store: Some(false),
            latency,
            level: None,
            line: 0,
            precise_ip: true,
        }
    }

    #[test]
    fn bounds_track_min_and_max() {
        let mut ar = AddressRanges::new();
        let v = VarId(0);
        ar.record(v, 0, None, &sample(0x500, None));
        ar.record(v, 0, None, &sample(0x100, None));
        ar.record(v, 0, None, &sample(0x900, None));
        let key = RangeKey {
            var: v,
            bin: 0,
            scope: RangeScope::Program,
        };
        let s = ar.get(&key).unwrap();
        assert_eq!((s.min_addr, s.max_addr, s.count), (0x100, 0x900, 3));
    }

    #[test]
    fn region_scope_recorded_alongside_program_scope() {
        let mut ar = AddressRanges::new();
        let v = VarId(1);
        let region = FuncId(9);
        ar.record(v, 2, Some(region), &sample(0x100, Some(50)));
        ar.record(v, 2, None, &sample(0x200, Some(70)));
        let prog = ar
            .get(&RangeKey {
                var: v,
                bin: 2,
                scope: RangeScope::Program,
            })
            .unwrap();
        assert_eq!(prog.count, 2);
        assert_eq!(prog.latency, 120);
        let reg = ar
            .get(&RangeKey {
                var: v,
                bin: 2,
                scope: RangeScope::Region(region),
            })
            .unwrap();
        assert_eq!(reg.count, 1);
        assert_eq!(reg.latency, 50);
        assert_eq!((reg.min_addr, reg.max_addr), (0x100, 0x100));
    }

    #[test]
    fn bins_are_independent() {
        let mut ar = AddressRanges::new();
        let v = VarId(0);
        ar.record(v, 0, None, &sample(0x100, None));
        ar.record(v, 1, None, &sample(0x800, None));
        assert_eq!(ar.len(), 2);
    }

    #[test]
    fn merge_is_min_max_reduction() {
        let mut a = RangeStat::new(0x500, 10, 10);
        let b = RangeStat::new(0x100, 20, 0);
        a.merge(&b);
        assert_eq!(a.min_addr, 0x100);
        assert_eq!(a.max_addr, 0x500);
        assert_eq!(a.count, 2);
        assert_eq!(a.latency, 30);
        assert_eq!(a.latency_remote, 10);
    }

    #[test]
    fn into_sorted_vec_orders_by_var_bin_scope() {
        let mut ar = AddressRanges::new();
        ar.record(VarId(1), 0, None, &sample(1, None));
        ar.record(VarId(0), 1, Some(FuncId(3)), &sample(2, None));
        ar.record(VarId(0), 0, None, &sample(3, None));
        let v = ar.into_sorted_vec();
        let keys: Vec<_> = v.iter().map(|(k, _)| (k.var.0, k.bin)).collect();
        assert_eq!(keys[0], (0, 0));
        assert_eq!(keys.last().unwrap(), &(1, 0));
    }
}
