//! The serialized output of one monitored execution: what `hpcrun` writes
//! and the offline analyzer (crate `numa-analysis`) consumes.

use crate::addrcentric::{RangeKey, RangeStat};
use crate::cct::Cct;
use crate::datacentric::{VarId, VarRecord};
use crate::firsttouch::FirstTouchRecord;
use crate::metrics::MetricSet;
use crate::trace::Trace;
use numa_machine::{CpuId, DomainId};
use numa_sampling::{Capabilities, MechanismKind};
use serde::{Deserialize, Serialize};

/// One thread's measurement data.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThreadProfile {
    pub tid: usize,
    pub cpu: CpuId,
    pub domain: DomainId,
    /// Per-thread calling context tree with exclusive metrics on nodes.
    pub cct: Cct,
    /// Whole-thread metric totals.
    pub totals: MetricSet,
    /// Absolute instructions retired (conventional PMU counter; the `I` of
    /// Eq. 3).
    pub instructions: u64,
    /// Absolute eligible-event count from the mechanism's event counter
    /// (the `E_NUMA` of Eq. 3; 0 for mechanisms without one).
    pub numa_events: u64,
    /// Data-centric metrics per variable.
    pub var_metrics: Vec<(VarId, MetricSet)>,
    /// Address-centric \[min,max\] ranges per (variable, bin, scope).
    pub ranges: Vec<(RangeKey, RangeStat)>,
    /// Time series of cumulative NUMA counters (empty unless tracing was
    /// enabled). Optional in the on-disk format for compatibility with
    /// profiles written before tracing existed.
    #[serde(default)]
    pub trace: Trace,
    /// Call-stack underflows the engine absorbed on this thread: exits
    /// that outnumbered enters in a malformed replayed program. Nonzero
    /// means the code-centric attribution for this thread is suspect.
    /// Optional on disk for compatibility with older profiles.
    #[serde(default)]
    pub stack_underflows: u64,
}

/// Full profile of one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NumaProfile {
    pub mechanism: MechanismKind,
    pub capabilities: Capabilities,
    /// NUMA domains of the machine measured on.
    pub domains: usize,
    pub machine_name: String,
    /// Function names indexed by `FuncId`.
    pub func_names: Vec<String>,
    /// All monitored variables.
    pub vars: Vec<VarRecord>,
    pub threads: Vec<ThreadProfile>,
    /// First-touch records (§6), across all threads.
    pub first_touches: Vec<FirstTouchRecord>,
}

impl NumaProfile {
    /// Name of a function id (for report rendering).
    pub fn func_name(&self, id: numa_sim::FuncId) -> &str {
        self.func_names
            .get(id.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Variable record by id. Returns `None` for ids with no record —
    /// possible when analyzing a truncated or hand-edited profile whose
    /// metric tables reference variables missing from `vars` — so query
    /// paths degrade gracefully instead of panicking on malformed input.
    pub fn var(&self, id: VarId) -> Option<&VarRecord> {
        self.vars.get(id.0 as usize)
    }

    /// Look up a variable by source name (first match).
    pub fn var_by_name(&self, name: &str) -> Option<&VarRecord> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Total sampled-instruction count across threads (`I^s`).
    pub fn total_instruction_samples(&self) -> u64 {
        self.threads.iter().map(|t| t.totals.samples_instr).sum()
    }

    /// Total call-stack underflows absorbed across threads (0 for a
    /// well-formed program).
    pub fn total_stack_underflows(&self) -> u64 {
        self.threads.iter().map(|t| t.stack_underflows).sum()
    }

    /// Total absolute instructions across threads (`I`).
    pub fn total_instructions(&self) -> u64 {
        self.threads.iter().map(|t| t.instructions).sum()
    }

    /// Serialize to JSON (the on-disk profile format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("profile serializes")
    }

    /// Deserialize from JSON, rebuilding CCT indices.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let mut p: NumaProfile = serde_json::from_str(s)?;
        for t in &mut p.threads {
            t.cct.rebuild_index();
        }
        Ok(p)
    }
}
