//! Data-centric attribution: variables and the address→variable map (§5.1).
//!
//! Heap variables are tracked from their allocation (with the full
//! allocation call path, as HPCToolkit attributes heap data to allocation
//! contexts); static variables are registered from the "symbol table" (the
//! workload announces them at startup); stack variables are supported as an
//! extension (the paper's future work #1).

use numa_machine::{PAGE_SHIFT, PAGE_SIZE};
use numa_sim::{Frame, VarKind};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a monitored variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct VarId(pub u32);

/// Everything known about one variable.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VarRecord {
    pub id: VarId,
    pub name: String,
    pub addr: u64,
    pub bytes: u64,
    pub kind: VarKind,
    /// Thread that performed the allocation.
    pub alloc_tid: usize,
    /// Full calling context of the allocation site.
    pub alloc_path: Vec<Frame>,
    /// Number of address-centric bins (§5.2): 1 for small variables, the
    /// configured bin count for variables spanning more than the threshold.
    pub bins: u16,
    /// Set when the variable was freed (late samples are dropped).
    pub freed: bool,
}

impl VarRecord {
    /// Bin index of an address within this variable.
    pub fn bin_of(&self, addr: u64) -> u16 {
        debug_assert!(addr >= self.addr && addr < self.addr + self.bytes);
        if self.bins <= 1 {
            return 0;
        }
        let off = addr - self.addr;
        // u128 to avoid overflow for huge variables.
        let idx = (off as u128 * self.bins as u128 / self.bytes as u128) as u16;
        idx.min(self.bins - 1)
    }

    /// Address range `[lo, hi)` of a bin.
    pub fn bin_range(&self, bin: u16) -> (u64, u64) {
        assert!(bin < self.bins.max(1));
        if self.bins <= 1 {
            return (self.addr, self.addr + self.bytes);
        }
        let lo = self.addr + self.bytes * bin as u64 / self.bins as u64;
        let hi = self.addr + self.bytes * (bin as u64 + 1) / self.bins as u64;
        (lo, hi)
    }

    /// Pages spanned by the variable's extent.
    pub fn pages(&self) -> u64 {
        let first = self.addr >> PAGE_SHIFT;
        let last = (self.addr + self.bytes - 1) >> PAGE_SHIFT;
        last - first + 1
    }
}

/// Decide the bin count per §5.2: a variable with an address range larger
/// than `threshold_pages` pages is divided into `bins` bins (default five
/// and five); smaller variables get a single bin.
pub fn bins_for(bytes: u64, bins: u16, threshold_pages: u64) -> u16 {
    if bytes > threshold_pages * PAGE_SIZE {
        bins.max(1)
    } else {
        1
    }
}

/// Concurrent registry of monitored variables with range lookup.
pub struct VariableRegistry {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    vars: Vec<VarRecord>,
    /// start → (end, id); ranges never overlap (the address space is a
    /// monotone bump allocator).
    by_range: BTreeMap<u64, (u64, VarId)>,
}

impl Default for VariableRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl VariableRegistry {
    pub fn new() -> Self {
        VariableRegistry {
            inner: RwLock::new(Inner::default()),
        }
    }

    /// Register a variable; returns its id.
    #[allow(clippy::too_many_arguments)] // mirrors the allocation event's fields
    pub fn register(
        &self,
        name: &str,
        addr: u64,
        bytes: u64,
        kind: VarKind,
        alloc_tid: usize,
        alloc_path: Vec<Frame>,
        bins: u16,
    ) -> VarId {
        let mut inner = self.inner.write();
        let id = VarId(inner.vars.len() as u32);
        inner.vars.push(VarRecord {
            id,
            name: name.to_string(),
            addr,
            bytes,
            kind,
            alloc_tid,
            alloc_path,
            bins,
            freed: false,
        });
        inner.by_range.insert(addr, (addr + bytes, id));
        id
    }

    /// The live variable containing `addr`, if any.
    pub fn lookup(&self, addr: u64) -> Option<VarId> {
        let inner = self.inner.read();
        let (_, &(end, id)) = inner.by_range.range(..=addr).next_back()?;
        (addr < end && !inner.vars[id.0 as usize].freed).then_some(id)
    }

    /// Mark the variable starting at `addr` freed. Returns its id.
    pub fn mark_freed(&self, addr: u64) -> Option<VarId> {
        let mut inner = self.inner.write();
        let &(_, id) = inner.by_range.get(&addr)?;
        inner.vars[id.0 as usize].freed = true;
        Some(id)
    }

    /// Snapshot of a record.
    pub fn record(&self, id: VarId) -> VarRecord {
        self.inner.read().vars[id.0 as usize].clone()
    }

    /// Run `f` against a record without cloning it (per-sample hot path).
    pub fn with_record<R>(&self, id: VarId, f: impl FnOnce(&VarRecord) -> R) -> R {
        f(&self.inner.read().vars[id.0 as usize])
    }

    /// All records (snapshot).
    pub fn all(&self) -> Vec<VarRecord> {
        self.inner.read().vars.clone()
    }

    pub fn len(&self) -> usize {
        self.inner.read().vars.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes.
    pub fn footprint_bytes(&self) -> usize {
        let inner = self.inner.read();
        inner.vars.len() * (std::mem::size_of::<VarRecord>() + 32) + inner.by_range.len() * 40
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with(name: &str, addr: u64, bytes: u64, bins: u16) -> (VariableRegistry, VarId) {
        let r = VariableRegistry::new();
        let id = r.register(name, addr, bytes, VarKind::Heap, 0, Vec::new(), bins);
        (r, id)
    }

    #[test]
    fn lookup_hits_inside_range_only() {
        let (r, id) = registry_with("z", 0x10000, 0x1000, 1);
        assert_eq!(r.lookup(0x10000), Some(id));
        assert_eq!(r.lookup(0x10fff), Some(id));
        assert_eq!(r.lookup(0x11000), None);
        assert_eq!(r.lookup(0xffff), None);
    }

    #[test]
    fn lookup_distinguishes_adjacent_vars() {
        let r = VariableRegistry::new();
        let a = r.register("a", 0x1000, 0x1000, VarKind::Heap, 0, Vec::new(), 1);
        let b = r.register("b", 0x2000, 0x1000, VarKind::Heap, 0, Vec::new(), 1);
        assert_eq!(r.lookup(0x1fff), Some(a));
        assert_eq!(r.lookup(0x2000), Some(b));
    }

    #[test]
    fn freed_vars_stop_matching() {
        let (r, id) = registry_with("z", 0x10000, 0x1000, 1);
        assert_eq!(r.mark_freed(0x10000), Some(id));
        assert_eq!(r.lookup(0x10000), None);
        assert!(r.record(id).freed);
    }

    #[test]
    fn bin_of_partitions_evenly() {
        let (r, id) = registry_with("z", 0, 1000, 5);
        let rec = r.record(id);
        assert_eq!(rec.bin_of(0), 0);
        assert_eq!(rec.bin_of(199), 0);
        assert_eq!(rec.bin_of(200), 1);
        assert_eq!(rec.bin_of(999), 4);
    }

    #[test]
    fn bin_ranges_tile_the_variable() {
        let (r, id) = registry_with("z", 0x1000, 12345, 5);
        let rec = r.record(id);
        let mut expected_lo = rec.addr;
        for b in 0..rec.bins {
            let (lo, hi) = rec.bin_range(b);
            assert_eq!(lo, expected_lo);
            assert!(hi > lo);
            // Every address in [lo, hi) maps back to bin b.
            assert_eq!(rec.bin_of(lo), b);
            assert_eq!(rec.bin_of(hi - 1), b);
            expected_lo = hi;
        }
        assert_eq!(expected_lo, rec.addr + rec.bytes);
    }

    #[test]
    fn bins_for_follows_paper_default() {
        // §5.2: a variable with an address range larger than five pages is
        // divided into five bins by default.
        assert_eq!(bins_for(5 * PAGE_SIZE, 5, 5), 1);
        assert_eq!(bins_for(5 * PAGE_SIZE + 1, 5, 5), 5);
        assert_eq!(bins_for(64, 5, 5), 1);
        assert_eq!(bins_for(1 << 30, 12, 5), 12);
    }

    #[test]
    fn huge_variable_bins_do_not_overflow() {
        let (r, id) = registry_with("huge", 0, u64::MAX / 2, 7);
        let rec = r.record(id);
        assert_eq!(rec.bin_of(u64::MAX / 2 - 1), 6);
    }
}
