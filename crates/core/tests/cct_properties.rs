//! Property tests for the calling context tree.

use numa_profiler::{Cct, NodeKey, ROOT};
use numa_sim::{Frame, FrameKind, FuncId};
use proptest::prelude::*;

fn arb_stack() -> impl Strategy<Value = (Vec<Frame>, u32)> {
    (prop::collection::vec((0u32..12, 0u8..3), 0..6), 0u32..5).prop_map(|(frames, line)| {
        let stack = frames
            .into_iter()
            .map(|(f, k)| Frame {
                func: FuncId(f),
                kind: match k {
                    0 => FrameKind::Function,
                    1 => FrameKind::ParallelRegion,
                    _ => FrameKind::Loop,
                },
            })
            .collect();
        (stack, line)
    })
}

proptest! {
    /// Resolving the same (stack, line) twice yields the same node, and
    /// the node's root path reconstructs the stack.
    #[test]
    fn resolve_is_stable_and_path_roundtrips(
        stacks in prop::collection::vec(arb_stack(), 1..60)
    ) {
        let mut cct = Cct::new(4);
        for (stack, line) in &stacks {
            let a = cct.resolve(stack, *line);
            let b = cct.resolve(stack, *line);
            prop_assert_eq!(a, b);
            // Reconstruct: path keys (minus root, minus optional line leaf)
            // must equal the stack's frames.
            let path = cct.path_to(a);
            prop_assert_eq!(path[0], ROOT);
            let mut keys: Vec<NodeKey> =
                path[1..].iter().map(|&id| cct.node(id).key).collect();
            if *line != 0 {
                let leaf = keys.pop().unwrap();
                prop_assert_eq!(leaf, NodeKey::Line(*line));
            }
            let expect: Vec<NodeKey> = stack.iter().map(|&f| NodeKey::Frame(f)).collect();
            prop_assert_eq!(keys, expect);
        }
    }

    /// Inclusive metrics at the root equal the sum of all exclusive
    /// metrics, for arbitrary attribution patterns.
    #[test]
    fn root_inclusive_equals_total(
        stacks in prop::collection::vec((arb_stack(), 1u64..50), 1..40)
    ) {
        let mut cct = Cct::new(4);
        let mut total = 0u64;
        for ((stack, line), n) in &stacks {
            let id = cct.resolve(stack, *line);
            cct.node_mut(id).metrics.add_instruction_samples(*n);
            total += n;
        }
        prop_assert_eq!(cct.inclusive(ROOT).samples_instr, total);
        // Each node's inclusive count is at least its exclusive count and
        // at most the total.
        for id in 0..cct.len() as u32 {
            let inc = cct.inclusive(id).samples_instr;
            prop_assert!(inc >= cct.node(id).metrics.samples_instr);
            prop_assert!(inc <= total);
        }
    }

    /// Serde roundtrip preserves structure and resolution behaviour.
    #[test]
    fn serde_roundtrip_preserves_resolution(
        stacks in prop::collection::vec(arb_stack(), 1..30)
    ) {
        let mut cct = Cct::new(2);
        let ids: Vec<u32> = stacks.iter().map(|(s, l)| cct.resolve(s, *l)).collect();
        let json = serde_json::to_string(&cct).unwrap();
        let mut back: Cct = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        prop_assert_eq!(back.len(), cct.len());
        for ((s, l), id) in stacks.iter().zip(ids) {
            prop_assert_eq!(back.resolve(s, *l), id);
        }
    }
}
