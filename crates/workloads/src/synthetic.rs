//! Synthetic access-pattern kernels.
//!
//! Small parameterized workloads producing each of the canonical
//! address-centric shapes the analyzer classifies. Used by the pattern
//! examples, the ablation benches, and tests — and handy as minimal
//! reproducers when exploring the profiler.

use crate::harness::{timed_phase, Workload, WorkloadOutput};
use crate::lulesh::block;
use numa_machine::PlacementPolicy;
use numa_sim::Program;
use serde::{Deserialize, Serialize};

/// Which canonical shape the kernel produces.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SyntheticPattern {
    /// Disjoint ascending per-thread blocks.
    Blocked,
    /// Ascending windows with heavy overlap.
    StaggeredOverlap,
    /// Every thread sweeps the whole variable.
    FullRange,
    /// Pseudo-random windows uncorrelated with thread id.
    Irregular,
}

impl SyntheticPattern {
    pub const ALL: [SyntheticPattern; 4] = [
        SyntheticPattern::Blocked,
        SyntheticPattern::StaggeredOverlap,
        SyntheticPattern::FullRange,
        SyntheticPattern::Irregular,
    ];
}

/// A single-array kernel: master-allocated variable (`data`), swept by all
/// threads with the chosen pattern for `iterations` rounds.
#[derive(Clone, Debug)]
pub struct Synthetic {
    pub bytes: u64,
    pub iterations: usize,
    pub pattern: SyntheticPattern,
    pub policy: PlacementPolicy,
    /// Compute instructions interleaved per access (0 = pure memory).
    pub compute_per_access: u64,
}

impl Synthetic {
    pub fn new(bytes: u64, pattern: SyntheticPattern) -> Self {
        Synthetic {
            bytes,
            iterations: 1,
            pattern,
            policy: PlacementPolicy::FirstTouch,
            compute_per_access: 0,
        }
    }

    pub fn with_policy(mut self, policy: PlacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    pub fn with_compute(mut self, per_access: u64) -> Self {
        self.compute_per_access = per_access;
        self
    }
}

fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl Workload for Synthetic {
    fn name(&self) -> &'static str {
        "synthetic"
    }

    fn execute(&self, program: &mut Program) -> WorkloadOutput {
        let mut out = WorkloadOutput::default();
        let bytes = self.bytes;
        let mut base = 0;
        program.serial("main", |ctx| {
            base = ctx.alloc("data", bytes, self.policy.clone());
            // Master init (the first-touch binder for FirstTouch policy).
            ctx.store_range(base, bytes / 64, 64);
        });
        let pattern = self.pattern;
        let compute = self.compute_per_access;
        timed_phase(program, &mut out, "sweep", |p| {
            let threads = p.num_threads() as u64;
            for _ in 0..self.iterations {
                p.parallel("sweep._omp", |tid, ctx| {
                    let tid = tid as u64;
                    match pattern {
                        SyntheticPattern::Blocked => {
                            let (lo, hi) = block(bytes / 64, threads, tid);
                            for line in lo..hi {
                                ctx.load(base + line * 64, 8);
                                ctx.compute(compute);
                            }
                        }
                        SyntheticPattern::StaggeredOverlap => {
                            let start = tid * bytes / (threads * 8);
                            let len = bytes * 3 / 5;
                            let start = start.min(bytes - len);
                            for off in (0..len).step_by(256) {
                                ctx.load(base + start + off, 8);
                                ctx.compute(compute);
                            }
                        }
                        SyntheticPattern::FullRange => {
                            let phase = (tid * 64) % 1024;
                            for off in (phase..bytes).step_by(1024) {
                                ctx.load(base + off, 8);
                                ctx.compute(compute);
                            }
                        }
                        SyntheticPattern::Irregular => {
                            let mut x = mix(tid + 1);
                            let window = bytes / (threads * 2);
                            for _ in 0..3 {
                                x = mix(x);
                                let start = x % (bytes - window);
                                for off in (0..window).step_by(256) {
                                    ctx.load(base + start + off, 8);
                                    ctx.compute(compute);
                                }
                            }
                        }
                    }
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_profiled;
    use numa_analysis::{classify, AccessPattern, Analyzer};
    use numa_machine::{Machine, MachinePreset};
    use numa_profiler::{ProfilerConfig, RangeScope};
    use numa_sampling::{MechanismConfig, MechanismKind};
    use numa_sim::ExecMode;

    fn classify_pattern(p: SyntheticPattern) -> AccessPattern {
        let app = Synthetic::new(8 << 20, p);
        let cfg =
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 4)).with_bins(64);
        let (_, _, profile) = run_profiled(
            &app,
            Machine::from_preset(MachinePreset::AmdMagnyCours),
            16,
            ExecMode::Sequential,
            cfg,
        );
        let a = Analyzer::new(profile);
        let var = a.profile().var_by_name("data").unwrap().id;
        classify(&a.thread_ranges(var, RangeScope::Program))
    }

    #[test]
    fn each_synthetic_pattern_classifies_as_intended() {
        assert_eq!(
            classify_pattern(SyntheticPattern::Blocked),
            AccessPattern::Blocked
        );
        assert_eq!(
            classify_pattern(SyntheticPattern::StaggeredOverlap),
            AccessPattern::StaggeredOverlap
        );
        assert_eq!(
            classify_pattern(SyntheticPattern::FullRange),
            AccessPattern::FullRange
        );
        assert_eq!(
            classify_pattern(SyntheticPattern::Irregular),
            AccessPattern::Irregular
        );
    }

    #[test]
    fn policies_compose_with_patterns() {
        let app = Synthetic::new(4 << 20, SyntheticPattern::Blocked)
            .with_policy(PlacementPolicy::interleave_all(8))
            .with_iterations(2)
            .with_compute(4);
        let m = Machine::from_preset(MachinePreset::AmdMagnyCours);
        let (_, _, profile) = run_profiled(
            &app,
            m.clone(),
            8,
            ExecMode::Sequential,
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 16)),
        );
        let hist = m
            .page_map()
            .binding_histogram(profile.var_by_name("data").unwrap().addr)
            .unwrap();
        let max = *hist.iter().max().unwrap();
        let min = *hist.iter().min().unwrap();
        assert!(max - min <= 1, "interleave even: {hist:?}");
    }
}
