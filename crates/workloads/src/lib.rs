//! Mini-app ports of the paper's four case-study benchmarks (§8):
//! LULESH, AMG2006, Blackscholes, and UMT2013.
//!
//! Each port reproduces the *memory-access structure* that drives the
//! paper's analysis — allocation sites, first-touch behaviour, per-thread
//! sharing patterns, and the per-variable remote-access profiles shown in
//! Figures 3–10 — with Baseline / Interleaved / tool-guided optimization
//! variants so the case-study speedups can be regenerated.

pub mod amg2006;
pub mod blackscholes;
pub mod harness;
pub mod lulesh;
pub mod synthetic;
pub mod umt2013;

pub use amg2006::{Amg2006, AmgVariant};
pub use blackscholes::{Blackscholes, BlackscholesVariant};
pub use harness::{run_profiled, run_unmonitored, timed_phase, Workload, WorkloadOutput};
pub use lulesh::{Lulesh, LuleshVariant};
pub use synthetic::{Synthetic, SyntheticPattern};
pub use umt2013::{Umt2013, UmtVariant};
