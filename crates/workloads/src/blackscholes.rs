//! Blackscholes mini-app (§8.3).
//!
//! PARSEC's option-pricing benchmark, the paper's *negative* case study:
//! NUMA metrics flag a severe-looking layout problem (all of `buffer` in
//! domain 0, `M_r ≫ M_l`), yet `lpi_NUMA` is only 0.035 — far below the
//! 0.1 threshold — and indeed the fix barely moves end-to-end time. The
//! benchmark validates that the derived metric separates "looks bad" from
//! "costs time".
//!
//! Layout (Figure 9a): one `buffer` holds five sections — `sptprice`,
//! `strike`, `rate`, `volatility`, `otime` — each `num_options` wide; five
//! pointers index into it. Every thread prices an option block, reading
//! its element from *each* section: per-thread accessed ranges are five
//! windows spread across the buffer, which merge into the overlapping
//! staggered pattern of Figure 8. The optimization (Figure 9b) regroups
//! the five fields into an array of structures and parallelizes the
//! initialization.
//!
//! The pricing math is compute-heavy (CNDF evaluations), and each thread's
//! working set fits in cache across the many pricing rounds, so NUMA
//! latency is a cold-start effect only.

use crate::harness::{timed_phase, Workload, WorkloadOutput};
use crate::lulesh::block;
use numa_machine::PlacementPolicy;
use numa_sim::Program;
use serde::{Deserialize, Serialize};

/// Variants of the Blackscholes case study.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BlackscholesVariant {
    /// Section-of-arrays `buffer`, master-thread initialization.
    Baseline,
    /// The paper's fix: array-of-structures layout plus parallelized
    /// first-touch initialization (Figure 9b).
    Regrouped,
}

/// Blackscholes mini-app parameters.
#[derive(Clone, Debug)]
pub struct Blackscholes {
    /// Options priced per thread.
    pub options_per_thread: u64,
    /// Pricing rounds (PARSEC reprices the same options many times).
    pub rounds: usize,
    pub variant: BlackscholesVariant,
}

/// Fields per option (the five sections of Figure 9).
const FIELDS: u64 = 5;
const W: u64 = 8;
/// Instructions of pricing math per option (two CNDF evaluations,
/// exp/log/sqrt).
const PRICE_COMPUTE: u64 = 220;

impl Blackscholes {
    pub fn new(options_per_thread: u64, rounds: usize, variant: BlackscholesVariant) -> Self {
        assert!(options_per_thread >= 16);
        Blackscholes {
            options_per_thread,
            rounds,
            variant,
        }
    }

    pub fn tiny(variant: BlackscholesVariant) -> Self {
        Blackscholes::new(512, 10, variant)
    }

    fn num_options(&self, threads: usize) -> u64 {
        self.options_per_thread * threads as u64
    }
}

impl Workload for Blackscholes {
    fn name(&self) -> &'static str {
        "Blackscholes"
    }

    fn execute(&self, program: &mut Program) -> WorkloadOutput {
        let mut out = WorkloadOutput::default();
        let threads = program.num_threads();
        let n = self.num_options(threads);
        let buf_bytes = n * FIELDS * W;
        let mut buffer = 0;
        let mut prices = 0;

        program.serial("main", |ctx| {
            ctx.call("bs_init", |ctx| {
                buffer = ctx.alloc("buffer", buf_bytes, PlacementPolicy::FirstTouch);
                prices = ctx.alloc("prices", n * W, PlacementPolicy::FirstTouch);
            });
        });

        // Address of option i's field f under the active layout.
        let variant = self.variant;
        let addr_of = move |i: u64, f: u64| -> u64 {
            match variant {
                // Five sections: field f of option i lives at section f.
                BlackscholesVariant::Baseline => buffer + (f * n + i) * W,
                // Array of structures: option i's fields are contiguous.
                BlackscholesVariant::Regrouped => buffer + (i * FIELDS + f) * W,
            }
        };

        timed_phase(program, &mut out, "init", |p| match self.variant {
            BlackscholesVariant::Baseline => {
                // Only the master thread initializes buffer (the first-touch
                // trap the paper pinpoints).
                p.serial("main", |ctx| {
                    ctx.call("bs_read_input", |ctx| {
                        for i in 0..n {
                            for f in 0..FIELDS {
                                ctx.store(addr_of(i, f), 8);
                            }
                        }
                        ctx.store_range(prices, n, W as u32);
                    });
                });
            }
            BlackscholesVariant::Regrouped => {
                // Parallelized initialization: each thread first-touches
                // its own options.
                p.parallel("bs_init._omp", |tid, ctx| {
                    let (lo, hi) = block(n, p_threads(ctx), tid as u64);
                    for i in lo..hi {
                        for f in 0..FIELDS {
                            ctx.store(addr_of(i, f), 8);
                        }
                        ctx.store(prices + i * W, 8);
                    }
                });
            }
        });

        timed_phase(program, &mut out, "price", |p| {
            for _ in 0..self.rounds {
                p.parallel("bs_thread._omp", |tid, ctx| {
                    let (lo, hi) = block(n, p_threads(ctx), tid as u64);
                    ctx.loop_scope("price_loop", |ctx| {
                        ctx.at_line(318);
                        for i in lo..hi {
                            for f in 0..FIELDS {
                                ctx.load(addr_of(i, f), 8);
                            }
                            ctx.compute(PRICE_COMPUTE);
                            ctx.store(prices + i * W, 8);
                        }
                        ctx.at_line(0);
                    });
                });
            }
        });
        out
    }
}

fn p_threads(ctx: &numa_sim::ThreadCtx<'_>) -> u64 {
    ctx.num_threads() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_profiled, run_unmonitored};
    use numa_analysis::{analyze, classify, AccessPattern, Analyzer};
    use numa_machine::{Machine, MachinePreset};
    use numa_profiler::{ProfilerConfig, RangeScope, LPI_THRESHOLD};
    use numa_sampling::{MechanismConfig, MechanismKind};
    use numa_sim::ExecMode;

    fn machine() -> Machine {
        Machine::from_preset(MachinePreset::AmdMagnyCours)
    }

    fn analyzer(variant: BlackscholesVariant, period: u64) -> Analyzer {
        let app = Blackscholes::tiny(variant);
        let (_, _, profile) = run_profiled(
            &app,
            machine(),
            8,
            ExecMode::Sequential,
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, period)),
        );
        Analyzer::new(profile)
    }

    #[test]
    fn buffer_shows_staggered_overlap_pattern() {
        let a = analyzer(BlackscholesVariant::Baseline, 2);
        let buffer = a.profile().var_by_name("buffer").unwrap().id;
        let pattern = classify(&a.thread_ranges(buffer, RangeScope::Program));
        assert_eq!(
            pattern,
            AccessPattern::StaggeredOverlap,
            "Figure 8: ascending windows with large overlaps"
        );
    }

    #[test]
    fn regrouped_buffer_becomes_blocked() {
        let a = analyzer(BlackscholesVariant::Regrouped, 2);
        let buffer = a.profile().var_by_name("buffer").unwrap().id;
        let pattern = classify(&a.thread_ranges(buffer, RangeScope::Program));
        assert_eq!(
            pattern,
            AccessPattern::Blocked,
            "Figure 9b: AoS layout makes per-thread data contiguous"
        );
    }

    #[test]
    fn mismatch_is_high_but_lpi_is_low() {
        // The §8.3 lesson: M_r ≫ M_l (buffer homed in domain 0, touched by
        // everyone), yet most accesses hit cache after the first round, so
        // the remote-latency-per-access stays small relative to the
        // program's compute cost.
        let a = analyzer(BlackscholesVariant::Baseline, 4);
        let buffer = a.profile().var_by_name("buffer").unwrap().id;
        let m = a.var_metrics(buffer);
        assert!(
            m.m_remote as f64 > 3.0 * m.m_local as f64,
            "M_r {} vs M_l {}",
            m.m_remote,
            m.m_local
        );
        let program = a.program();
        // Program-level lpi is far smaller than the variable's raw remote
        // traffic suggests — compute dominates the instruction stream.
        let lpi = program.lpi_numa.unwrap();
        let remote_frac = program.remote_fraction;
        assert!(remote_frac > 0.5, "remote fraction {remote_frac}");
        assert!(
            lpi < 100.0 * LPI_THRESHOLD,
            "lpi {lpi} should be moderated by the compute-heavy instruction stream"
        );
    }

    #[test]
    fn regrouping_changes_little_end_to_end() {
        // The fix eliminates remote latency but the program barely speeds
        // up (paper: < 0.1%; we allow a few percent for the smaller
        // simulated run, where the cold pass weighs more).
        let run = |v| {
            let app = Blackscholes::new(512, 50, v);
            run_unmonitored(&app, machine(), 8, ExecMode::Sequential).0
        };
        let base = run(BlackscholesVariant::Baseline);
        let opt = run(BlackscholesVariant::Regrouped);
        let gain =
            (base.elapsed_cycles as f64 - opt.elapsed_cycles as f64) / base.elapsed_cycles as f64;
        assert!(
            gain.abs() < 0.05,
            "NUMA fix should barely matter here, got {:.2}%",
            gain * 100.0
        );
    }

    #[test]
    fn report_declines_to_recommend_for_low_severity() {
        let a = analyzer(BlackscholesVariant::Baseline, 4);
        let report = analyze(&a);
        // Whether the whole-program verdict fires depends on scale; the
        // essential invariant is that lpi is computed and the report names
        // buffer as the top remote variable.
        assert_eq!(report.advice[0].name, "buffer");
        assert!(report.program.lpi_numa.is_some());
    }
}
