//! Common harness for running mini-apps bare or under the profiler.

use numa_machine::Machine;
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sim::{ExecMode, Program, ProgramStats};
use std::sync::Arc;

/// Per-phase timing emitted by a workload (e.g. AMG's setup vs. solve —
/// the paper reports solver-phase improvements separately).
#[derive(Clone, Debug, Default)]
pub struct WorkloadOutput {
    /// (phase name, elapsed cycles attributed to the phase).
    pub phases: Vec<(String, u64)>,
}

impl WorkloadOutput {
    pub fn phase(&self, name: &str) -> Option<u64> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, c)| *c)
    }
}

/// A mini-app: drives a [`Program`] through its regions.
pub trait Workload: Sync {
    fn name(&self) -> &'static str;
    fn execute(&self, program: &mut Program) -> WorkloadOutput;
}

/// Track a phase's elapsed cycles around a closure.
pub fn timed_phase(
    program: &mut Program,
    out: &mut WorkloadOutput,
    name: &str,
    f: impl FnOnce(&mut Program),
) {
    let before = program.stats().elapsed_cycles;
    f(program);
    let after = program.stats().elapsed_cycles;
    out.phases.push((name.to_string(), after - before));
}

/// Run a workload without monitoring (the Table 2 baseline).
pub fn run_unmonitored(
    w: &dyn Workload,
    machine: Machine,
    threads: usize,
    mode: ExecMode,
) -> (ProgramStats, WorkloadOutput) {
    let mut p = Program::unmonitored(machine, threads, mode);
    let out = w.execute(&mut p);
    (p.finish(), out)
}

/// Run a workload under the NUMA profiler.
pub fn run_profiled(
    w: &dyn Workload,
    machine: Machine,
    threads: usize,
    mode: ExecMode,
    config: ProfilerConfig,
) -> (ProgramStats, WorkloadOutput, NumaProfile) {
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, threads));
    let mut p = Program::new(machine, threads, mode, profiler.clone());
    let out = w.execute(&mut p);
    let stats = p.stats();
    let profile = finish_profile(p, profiler);
    (stats, out, profile)
}
