//! LULESH mini-app (§8.1).
//!
//! Reproduces the memory-access structure of LLNL's shock-hydrodynamics
//! proxy that the paper's first case study profiles:
//!
//! * six nodal arrays `x, y, z, xd, yd, zd` allocated with `operator new[]`
//!   (the paper's Figure 3 shows allocation sites at lines 2159/2160/2164);
//! * an element-to-node connectivity array `nodelist`, which in LULESH is a
//!   large *stack* variable — the paper converted it to static to measure
//!   it; this port can allocate it static (default) or stack (exercising
//!   the profiler's stack-variable extension);
//! * a force pass that gathers nodal coordinates through `nodelist`
//!   (block-partitioned elements, so thread `i` touches the `i`-th slice of
//!   every nodal array — the blocked staircase of Figure 3), and a velocity
//!   pass sweeping nodes.
//!
//! In the baseline, the master thread initializes every array, so first
//! touch binds all pages to domain 0: workers then access remote data and
//! contend for domain 0's memory controller. The variants apply the
//! paper's fixes.

use crate::harness::{timed_phase, Workload, WorkloadOutput};
use numa_machine::PlacementPolicy;
use numa_sim::{Program, ThreadCtx, VarKind};
use serde::{Deserialize, Serialize};

/// Data-placement variants of the LULESH case study.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LuleshVariant {
    /// Master-thread initialization; first touch maps everything to
    /// domain 0.
    Baseline,
    /// Page-interleaved allocation of all hot arrays (the prior-work
    /// strategy the paper compares against).
    Interleaved,
    /// The paper's tool-guided fix: block-wise distribution, implemented —
    /// exactly as in the paper — by parallelizing the first-touch
    /// initialization so each thread touches its own block.
    BlockWise,
}

/// LULESH mini-app parameters.
#[derive(Clone, Debug)]
pub struct Lulesh {
    /// Nodes per cube edge (node count = edge³).
    pub edge: usize,
    /// Timesteps of the force/velocity loop.
    pub iterations: usize,
    pub variant: LuleshVariant,
    /// Allocate `nodelist` as a stack variable instead of static.
    pub nodelist_on_stack: bool,
}

impl Lulesh {
    pub fn new(edge: usize, iterations: usize, variant: LuleshVariant) -> Self {
        assert!(edge >= 4);
        Lulesh {
            edge,
            iterations,
            variant,
            nodelist_on_stack: false,
        }
    }

    /// A size small enough for unit tests.
    pub fn tiny(variant: LuleshVariant) -> Self {
        Lulesh::new(12, 2, variant)
    }

    pub fn nodes(&self) -> u64 {
        (self.edge * self.edge * self.edge) as u64
    }

    pub fn elems(&self) -> u64 {
        let e = (self.edge - 1) as u64;
        e * e * e
    }
}

const ELEM_SIZE: u64 = 8;
/// `nodelist` holds 4-byte node indices (LULESH's `Index_t`).
const IDX_SIZE: u64 = 4;

struct Arrays {
    x: u64,
    y: u64,
    z: u64,
    xd: u64,
    yd: u64,
    zd: u64,
    nodelist: u64,
}

impl Lulesh {
    fn policy(&self, program: &Program) -> PlacementPolicy {
        match self.variant {
            LuleshVariant::Interleaved => {
                PlacementPolicy::interleave_all(program.machine().topology().domains())
            }
            _ => PlacementPolicy::FirstTouch,
        }
    }

    fn allocate(&self, program: &mut Program) -> Arrays {
        let nbytes = self.nodes() * ELEM_SIZE;
        let ebytes = self.elems() * 8 * IDX_SIZE;
        let policy = self.policy(program);
        let nodelist_kind = if self.nodelist_on_stack {
            VarKind::Stack
        } else {
            VarKind::Static
        };
        let mut arrays = None;
        program.serial("main", |ctx| {
            let a = ctx.call("Domain::AllocateNodalPersistent", |ctx| {
                let alloc_at = |ctx: &mut ThreadCtx<'_>, name: &str, line: u32| {
                    // The allocation call path ends in operator new[] with
                    // a distinct line per variable, as in Figure 3.
                    ctx.at_line(line);
                    let addr = ctx.call("operator new[]", |ctx| {
                        ctx.alloc(name, nbytes, policy.clone())
                    });
                    ctx.at_line(0);
                    addr
                };
                let x = alloc_at(ctx, "x", 2158);
                let y = alloc_at(ctx, "y", 2159);
                let z = alloc_at(ctx, "z", 2160);
                let xd = alloc_at(ctx, "xd", 2162);
                let yd = alloc_at(ctx, "yd", 2163);
                let zd = alloc_at(ctx, "zd", 2164);
                let nodelist = ctx.alloc_kind("nodelist", ebytes, policy.clone(), nodelist_kind);
                Arrays {
                    x,
                    y,
                    z,
                    xd,
                    yd,
                    zd,
                    nodelist,
                }
            });
            arrays = Some(a);
        });
        arrays.unwrap()
    }

    fn initialize(&self, program: &mut Program, arrays: &Arrays) {
        let nodes = self.nodes();
        let elems = self.elems();
        let init_thread =
            |ctx: &mut ThreadCtx<'_>, a: &Arrays, lo_n: u64, hi_n: u64, lo_e: u64, hi_e: u64| {
                ctx.call("InitMeshDecomp", |ctx| {
                    for arr in [a.x, a.y, a.z, a.xd, a.yd, a.zd] {
                        ctx.store_range(arr + lo_n * ELEM_SIZE, hi_n - lo_n, ELEM_SIZE as u32);
                    }
                    ctx.store_range(
                        a.nodelist + lo_e * 8 * IDX_SIZE,
                        (hi_e - lo_e) * 8,
                        IDX_SIZE as u32,
                    );
                });
            };
        match self.variant {
            LuleshVariant::BlockWise => {
                // The paper's fix: parallel first touch, one block per
                // thread — pages land in the toucher's domain.
                let n = program.num_threads() as u64;
                program.parallel("InitMeshDecomp._omp", |tid, ctx| {
                    let (lo_n, hi_n) = block(nodes, n, tid as u64);
                    let (lo_e, hi_e) = block(elems, n, tid as u64);
                    init_thread(ctx, arrays, lo_n, hi_n, lo_e, hi_e);
                });
            }
            _ => {
                program.serial("main", |ctx| {
                    init_thread(ctx, arrays, 0, nodes, 0, elems);
                });
            }
        }
    }

    /// One force pass: gather nodal coordinates through the connectivity.
    fn calc_force(&self, program: &mut Program, arrays: &Arrays) {
        let elems = self.elems();
        let nodes = self.nodes();
        let n = program.num_threads() as u64;
        program.parallel("CalcForceForNodes._omp", |tid, ctx| {
            let (lo, hi) = block(elems, n, tid as u64);
            ctx.loop_scope("elem_loop", |ctx| {
                for e in lo..hi {
                    // Read this element's 8 node indices (1 cache line).
                    ctx.at_line(1420);
                    ctx.load_range(arrays.nodelist + e * 8 * IDX_SIZE, 8, IDX_SIZE as u32);
                    // Gather coordinates of 4 of the nodes from x, y, and
                    // (heavier) z.
                    let n0 = e * nodes / elems;
                    ctx.at_line(1431);
                    for k in 0..4u64 {
                        let node = gather_node(n0, k, nodes, self.edge as u64);
                        ctx.load(arrays.x + node * ELEM_SIZE, 8);
                        ctx.load(arrays.y + node * ELEM_SIZE, 8);
                        ctx.load(arrays.z + node * ELEM_SIZE, 8);
                    }
                    // z is re-read in the hourglass term (making it the
                    // hottest variable, as in the paper).
                    ctx.at_line(1502);
                    for k in 0..4u64 {
                        let node = gather_node(n0, k + 4, nodes, self.edge as u64);
                        ctx.load(arrays.z + node * ELEM_SIZE, 8);
                    }
                    ctx.compute(420);
                    // Scatter force increments to the velocity arrays.
                    ctx.at_line(1540);
                    ctx.store(arrays.xd + n0 * ELEM_SIZE, 8);
                    ctx.store(arrays.yd + n0 * ELEM_SIZE, 8);
                    ctx.store(arrays.zd + n0 * ELEM_SIZE, 8);
                }
                ctx.at_line(0);
            });
        });
    }

    /// One velocity/position pass: streaming node sweep.
    fn calc_velocity(&self, program: &mut Program, arrays: &Arrays) {
        let nodes = self.nodes();
        let n = program.num_threads() as u64;
        program.parallel("CalcVelocityForNodes._omp", |tid, ctx| {
            let (lo, hi) = block(nodes, n, tid as u64);
            ctx.loop_scope("node_loop", |ctx| {
                ctx.at_line(2010);
                for i in lo..hi {
                    ctx.load(arrays.xd + i * ELEM_SIZE, 8);
                    ctx.load(arrays.yd + i * ELEM_SIZE, 8);
                    ctx.load(arrays.zd + i * ELEM_SIZE, 8);
                    ctx.store(arrays.x + i * ELEM_SIZE, 8);
                    ctx.store(arrays.y + i * ELEM_SIZE, 8);
                    ctx.store(arrays.z + i * ELEM_SIZE, 8);
                    ctx.compute(48);
                }
                ctx.at_line(0);
            });
        });
    }
}

/// Contiguous block `[lo, hi)` of `total` items for worker `t` of `n`.
pub(crate) fn block(total: u64, n: u64, t: u64) -> (u64, u64) {
    let per = total.div_ceil(n);
    let lo = (t * per).min(total);
    let hi = ((t + 1) * per).min(total);
    (lo, hi)
}

/// Node index gathered by an element whose base node is `n0`: a small
/// neighborhood (same cube corner offsets as a hexahedral element), kept in
/// bounds.
fn gather_node(n0: u64, k: u64, nodes: u64, edge: u64) -> u64 {
    let offset = match k {
        0 => 0,
        1 => 1,
        2 => edge,
        3 => edge + 1,
        4 => edge * edge,
        5 => edge * edge + 1,
        6 => edge * edge + edge,
        _ => edge * edge + edge + 1,
    };
    (n0 + offset).min(nodes - 1)
}

impl Workload for Lulesh {
    fn name(&self) -> &'static str {
        "LULESH"
    }

    fn execute(&self, program: &mut Program) -> WorkloadOutput {
        let mut out = WorkloadOutput::default();
        let arrays = self.allocate(program);
        timed_phase(program, &mut out, "init", |p| {
            self.initialize(p, &arrays);
        });
        timed_phase(program, &mut out, "solve", |p| {
            for _ in 0..self.iterations {
                self.calc_force(p, &arrays);
                self.calc_velocity(p, &arrays);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_profiled, run_unmonitored};
    use numa_machine::{Machine, MachinePreset};
    use numa_profiler::ProfilerConfig;
    use numa_sampling::{MechanismConfig, MechanismKind};
    use numa_sim::ExecMode;

    fn machine() -> Machine {
        Machine::from_preset(MachinePreset::AmdMagnyCours)
    }

    #[test]
    fn block_partition_covers_everything() {
        for total in [0u64, 1, 7, 48, 1000] {
            for n in [1u64, 3, 8, 48] {
                let mut covered = 0;
                for t in 0..n {
                    let (lo, hi) = block(total, n, t);
                    assert!(lo <= hi);
                    covered += hi - lo;
                }
                assert_eq!(covered, total, "total={total} n={n}");
            }
        }
    }

    #[test]
    fn baseline_binds_everything_to_domain_zero() {
        let m = machine();
        let app = Lulesh::tiny(LuleshVariant::Baseline);
        let (_, _, profile) = run_profiled(
            &app,
            m.clone(),
            8,
            ExecMode::Sequential,
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 64)),
        );
        let z = profile.var_by_name("z").unwrap();
        let hist = m.page_map().binding_histogram(z.addr).unwrap();
        assert!(hist[0] > 0);
        assert_eq!(
            hist[1..].iter().sum::<u64>(),
            0,
            "all pages in domain 0: {hist:?}"
        );
    }

    #[test]
    fn blockwise_spreads_pages_across_domains() {
        let m = machine();
        // Arrays must span enough pages (edge 32 → 256 KiB nodal arrays)
        // for an 8-way block distribution to be visible.
        let app = Lulesh::new(32, 1, LuleshVariant::BlockWise);
        let (_, _, profile) = run_profiled(
            &app,
            m.clone(),
            8,
            ExecMode::Sequential,
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 64)),
        );
        let z = profile.var_by_name("z").unwrap();
        let hist = m.page_map().binding_histogram(z.addr).unwrap();
        let populated = hist.iter().filter(|&&c| c > 0).count();
        assert!(populated >= 6, "pages spread across domains: {hist:?}");
    }

    #[test]
    fn interleaved_round_robins_pages() {
        let m = machine();
        let app = Lulesh::tiny(LuleshVariant::Interleaved);
        let (_, _, profile) = run_profiled(
            &app,
            m.clone(),
            8,
            ExecMode::Sequential,
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 64)),
        );
        let z = profile.var_by_name("z").unwrap();
        let hist = m.page_map().binding_histogram(z.addr).unwrap();
        let max = *hist.iter().max().unwrap();
        let min = *hist.iter().min().unwrap();
        assert!(max - min <= 1, "interleave is even: {hist:?}");
    }

    #[test]
    fn blockwise_is_faster_than_baseline() {
        let app_base = Lulesh::tiny(LuleshVariant::Baseline);
        let app_opt = Lulesh::tiny(LuleshVariant::BlockWise);
        let (base, _) = run_unmonitored(&app_base, machine(), 8, ExecMode::Sequential);
        let (opt, _) = run_unmonitored(&app_opt, machine(), 8, ExecMode::Sequential);
        assert!(
            opt.elapsed_cycles < base.elapsed_cycles,
            "block-wise {} vs baseline {}",
            opt.elapsed_cycles,
            base.elapsed_cycles
        );
    }

    #[test]
    fn profile_shows_seven_to_one_mismatch_for_z() {
        // 8 domains, threads spread evenly: 7/8 of accesses to
        // domain-0-homed data are remote (the paper's "M_r is roughly
        // seven times M_l").
        // Enough solver iterations that the serial init's local accesses
        // are a small minority, as in a real run.
        let app = Lulesh::new(12, 8, LuleshVariant::Baseline);
        let (_, _, profile) = run_profiled(
            &app,
            machine(),
            8,
            ExecMode::Sequential,
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 16)),
        );
        let z = profile.var_by_name("z").unwrap();
        let mut m = numa_profiler::MetricSet::new(8);
        for t in &profile.threads {
            for (v, vm) in &t.var_metrics {
                if *v == z.id {
                    m.merge(vm);
                }
            }
        }
        let ratio = m.m_remote as f64 / m.m_local.max(1) as f64;
        assert!(
            (4.0..=12.0).contains(&ratio),
            "M_r/M_l for z should be ≈7, got {ratio:.1} ({} / {})",
            m.m_remote,
            m.m_local
        );
        // All requests target domain 0 (NUMA_NODE0 = M_l + M_r).
        assert_eq!(m.per_domain[0], m.m_local + m.m_remote);
    }

    #[test]
    fn stack_nodelist_is_monitored_when_enabled() {
        let mut app = Lulesh::tiny(LuleshVariant::Baseline);
        app.nodelist_on_stack = true;
        let (_, _, profile) = run_profiled(
            &app,
            machine(),
            4,
            ExecMode::Sequential,
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 64)),
        );
        let nl = profile.var_by_name("nodelist").unwrap();
        assert_eq!(nl.kind, numa_sim::VarKind::Stack);
    }

    #[test]
    fn phases_are_reported() {
        let app = Lulesh::tiny(LuleshVariant::Baseline);
        let (_, out) = run_unmonitored(&app, machine(), 4, ExecMode::Sequential);
        assert!(out.phase("init").unwrap() > 0);
        assert!(out.phase("solve").unwrap() > 0);
    }
}
