//! AMG2006 mini-app (§8.2).
//!
//! Reproduces the access structure of the algebraic-multigrid solve the
//! paper's second case study profiles:
//!
//! * CSR-shaped matrix data: `RAP_diag_i` (row pointers), `RAP_diag_j`
//!   (column indices), `RAP_diag_data` (values), plus the indirection array
//!   `A_diag_i` — relax reads `RAP_diag_data[A_diag_i[i]]`, the indirect
//!   access the paper highlights (code-centric analysis alone cannot tell
//!   where that data lives);
//! * an interpolation pass whose threads touch *scattered* blocks of
//!   `RAP_diag_data`/`RAP_diag_j` (so the whole-program address-centric
//!   view looks irregular, Figure 4/6) while the dominant relax region has
//!   a regular blocked pattern (Figure 5/7);
//! * a matvec whose threads sweep the whole `u`/`rhs` vectors (the paper's
//!   "other two \[variables\] show that each thread accesses the whole
//!   range, leading to … interleaved page allocation").
//!
//! The paper reports its guided mix (block-wise for the three blockable
//! arrays, interleave for the vectors) cutting solver time by 51%, vs. 36%
//! for the prior interleave-everything strategy.

use crate::harness::{timed_phase, Workload, WorkloadOutput};
use crate::lulesh::block;
use numa_machine::PlacementPolicy;
use numa_sim::Program;
use serde::{Deserialize, Serialize};

/// Data-placement variants of the AMG2006 case study.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AmgVariant {
    /// Master init: everything first-touched into domain 0.
    Baseline,
    /// Prior work: interleave every problematic variable.
    InterleavedAll,
    /// This paper's guided mix: block-wise distribution for the arrays
    /// with blocked relax-region patterns, interleave for the full-range
    /// vectors.
    Guided,
}

/// AMG2006 mini-app parameters.
#[derive(Clone, Debug)]
pub struct Amg2006 {
    /// Matrix rows.
    pub rows: u64,
    /// Relax sweeps (the solver loop).
    pub iterations: usize,
    pub variant: AmgVariant,
}

/// Nonzeros per row of the coarse-grid operator.
const NNZ: u64 = 5;
const W: u64 = 8;

impl Amg2006 {
    pub fn new(rows: u64, iterations: usize, variant: AmgVariant) -> Self {
        assert!(rows >= 64);
        Amg2006 {
            rows,
            iterations,
            variant,
        }
    }

    /// Small enough for unit tests yet large enough that the working set
    /// exceeds one domain's L3 (so DRAM placement matters).
    pub fn tiny(variant: AmgVariant) -> Self {
        Amg2006::new(128 * 1024, 2, variant)
    }

    pub fn nnz(&self) -> u64 {
        self.rows * NNZ
    }
}

struct Data {
    rap_diag_i: u64,
    rap_diag_j: u64,
    rap_diag_data: u64,
    a_diag_i: u64,
    p_diag_data: u64,
    u: u64,
    rhs: u64,
}

/// Cheap deterministic hash for pseudo-random block assignment.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl Amg2006 {
    fn policies(&self, program: &Program) -> (PlacementPolicy, PlacementPolicy) {
        let domains = program.machine().topology().domains();
        // (blockable arrays, full-range vectors)
        match self.variant {
            AmgVariant::Baseline => (PlacementPolicy::FirstTouch, PlacementPolicy::FirstTouch),
            AmgVariant::InterleavedAll => (
                PlacementPolicy::interleave_all(domains),
                PlacementPolicy::interleave_all(domains),
            ),
            AmgVariant::Guided => (
                // Block-wise aligned with the thread binding: block t of
                // each array lands in thread t's domain — the "block-wise
                // distribution at the first touch place" of §8.2.
                program
                    .machine()
                    .blockwise_for_threads(program.num_threads()),
                PlacementPolicy::interleave_all(domains),
            ),
        }
    }

    fn setup(&self, program: &mut Program) -> Data {
        let (block_policy, vec_policy) = self.policies(program);
        let rows = self.rows;
        let nnz = self.nnz();
        let mut data = None;
        program.serial("main", |ctx| {
            let d = ctx.call("hypre_BoomerAMGSetup", |ctx| {
                let d = ctx.call("hypre_BoomerAMGBuildCoarseOperator", |ctx| Data {
                    rap_diag_i: ctx.alloc("RAP_diag_i", (rows + 1) * W, block_policy.clone()),
                    rap_diag_j: ctx.alloc("RAP_diag_j", nnz * W, block_policy.clone()),
                    rap_diag_data: ctx.alloc("RAP_diag_data", nnz * W, block_policy.clone()),
                    a_diag_i: ctx.alloc("A_diag_i", rows * W, block_policy.clone()),
                    p_diag_data: ctx.alloc("P_diag_data", rows * W, block_policy.clone()),
                    u: ctx.alloc("u", rows * W, vec_policy.clone()),
                    rhs: ctx.alloc("rhs", rows * W, vec_policy.clone()),
                });
                // Master-thread initialization: under first touch, this is
                // what binds every page to domain 0.
                ctx.call("hypre_CSRMatrixInitialize", |ctx| {
                    ctx.store_range(d.rap_diag_i, rows + 1, W as u32);
                    ctx.store_range(d.rap_diag_j, nnz, W as u32);
                    ctx.store_range(d.rap_diag_data, nnz, W as u32);
                    ctx.store_range(d.a_diag_i, rows, W as u32);
                    ctx.store_range(d.p_diag_data, rows, W as u32);
                    ctx.store_range(d.u, rows, W as u32);
                    ctx.store_range(d.rhs, rows, W as u32);
                });
                d
            });
            data = Some(d);
        });
        let data = data.unwrap();

        // Interpolation: each thread visits a *permuted* block of the
        // coarse operator plus a pseudo-random window — lightweight, but
        // enough that the whole-program address-centric view has no usable
        // pattern (Figure 4), while the relax region's view stays regular
        // (Figure 5).
        let nthreads = program.num_threads() as u64;
        program.parallel("hypre_BoomerAMGInterp._omp", |tid, ctx| {
            let tid = tid as u64;
            ctx.loop_scope("interp_loop", |ctx| {
                let len = (nnz / (nthreads * 4)).max(64).min(nnz);
                // A fixed permutation of thread→block breaks any
                // tid-monotone structure.
                let perm = (tid.wrapping_mul(5) + 3) % nthreads;
                let block_start = perm * (nnz / nthreads);
                let rand_start = mix(tid + 17) % (nnz - len);
                for lo in [block_start.min(nnz - len), rand_start] {
                    for k in (0..len).step_by(8) {
                        ctx.load(data.rap_diag_data + (lo + k) * W, 8);
                        ctx.load(data.rap_diag_j + (lo + k) * W, 8);
                    }
                    ctx.compute(len / 2);
                }
            });
        });
        data
    }

    /// One relax sweep: the dominant region
    /// (`hypre_boomerAMGRelax._omp`), with the indirect
    /// `RAP_diag_data[A_diag_i[i]]` access pattern of the paper.
    fn relax(&self, program: &mut Program, d: &Data) {
        let rows = self.rows;
        let n = program.num_threads() as u64;
        program.parallel("hypre_boomerAMGRelax._omp", |tid, ctx| {
            let (lo, hi) = block(rows, n, tid as u64);
            ctx.loop_scope("relax_row_loop", |ctx| {
                ctx.at_line(2855);
                for i in lo..hi {
                    // Row pointer.
                    ctx.load(d.rap_diag_i + i * W, 8);
                    // The indirection index.
                    ctx.load(d.a_diag_i + i * W, 8);
                    // Indirect base within this row's nonzero block: the
                    // value of A_diag_i[i] points at the row's data (the
                    // *address* pattern stays blocked even though the code
                    // pattern is indirect).
                    let base = i * NNZ + mix(i) % NNZ;
                    for k in 0..NNZ {
                        let j = (base + k) % (rows * NNZ);
                        ctx.load(d.rap_diag_j + j * W, 8);
                        ctx.load(d.rap_diag_data + j * W, 8);
                        // Stencil neighbour of u, near the diagonal.
                        let col = neighbour(i, k, rows);
                        ctx.load(d.u + col * W, 8);
                    }
                    ctx.load(d.p_diag_data + i * W, 8);
                    ctx.load(d.rhs + i * W, 8);
                    ctx.compute(24);
                    ctx.store(d.u + i * W, 8);
                }
                ctx.at_line(0);
            });
        });
    }

    /// One matvec: every thread sweeps the whole `u`/`rhs` vectors (a
    /// residual norm with a transposed access), producing the full-range
    /// pattern the paper fixes with interleaving.
    fn matvec(&self, program: &mut Program, d: &Data) {
        let rows = self.rows;
        let n = program.num_threads() as u64;
        program.parallel("hypre_ParCSRMatvec._omp", |tid, ctx| {
            ctx.loop_scope("matvec_loop", |ctx| {
                // Stride by a thread-dependent prime-ish step so every
                // thread covers the full vector with 1/8 density.
                let step = 8 + (tid as u64 % 3);
                let mut i = tid as u64 % step;
                ctx.at_line(1210);
                while i < rows {
                    ctx.load(d.u + i * W, 8);
                    ctx.load(d.rhs + i * W, 8);
                    ctx.compute(6);
                    i += step * 8;
                }
                ctx.at_line(0);
            });
            let _ = n;
        });
    }
}

/// Stencil column near the diagonal.
fn neighbour(i: u64, k: u64, rows: u64) -> u64 {
    let off = [0i64, 1, -1, 64, -64][(k % 5) as usize];
    let col = i as i64 + off;
    col.clamp(0, rows as i64 - 1) as u64
}

impl Workload for Amg2006 {
    fn name(&self) -> &'static str {
        "AMG2006"
    }

    fn execute(&self, program: &mut Program) -> WorkloadOutput {
        let mut out = WorkloadOutput::default();
        let mut data = None;
        timed_phase(program, &mut out, "setup", |p| {
            data = Some(self.setup(p));
        });
        let data = data.unwrap();
        timed_phase(program, &mut out, "solve", |p| {
            for _ in 0..self.iterations {
                self.relax(p, &data);
                self.matvec(p, &data);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_profiled, run_unmonitored};
    use numa_analysis::{classify, AccessPattern, Analyzer};
    use numa_machine::{Machine, MachinePreset};
    use numa_profiler::{ProfilerConfig, RangeScope};
    use numa_sampling::{MechanismConfig, MechanismKind};
    use numa_sim::{ExecMode, FuncId};

    fn machine() -> Machine {
        Machine::from_preset(MachinePreset::AmdMagnyCours)
    }

    fn profiled(variant: AmgVariant, period: u64) -> Analyzer {
        let app = Amg2006::tiny(variant);
        let (_, _, profile) = run_profiled(
            &app,
            machine(),
            8,
            ExecMode::Sequential,
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, period)),
        );
        Analyzer::new(profile)
    }

    fn region_id(a: &Analyzer, name: &str) -> FuncId {
        a.profile()
            .func_names
            .iter()
            .position(|n| n == name)
            .map(|i| FuncId(i as u32))
            .unwrap_or_else(|| panic!("region {name} not found"))
    }

    #[test]
    fn relax_region_pattern_is_blocked_but_program_is_not() {
        let a = profiled(AmgVariant::Baseline, 4);
        let var = a.profile().var_by_name("RAP_diag_data").unwrap().id;
        let relax = region_id(&a, "hypre_boomerAMGRelax._omp");
        let region_pattern = classify(&a.thread_ranges(var, RangeScope::Region(relax)));
        assert_eq!(
            region_pattern,
            AccessPattern::Blocked,
            "Figure 5: regular blocked pattern inside the relax region"
        );
        let program_pattern = classify(&a.thread_ranges(var, RangeScope::Program));
        assert_ne!(
            program_pattern,
            AccessPattern::Blocked,
            "Figure 4: the whole-program view hides the pattern"
        );
    }

    #[test]
    fn relax_region_dominates_rap_diag_data_cost() {
        let a = profiled(AmgVariant::Baseline, 4);
        let var = a.profile().var_by_name("RAP_diag_data").unwrap().id;
        let regions = a.var_regions(var);
        let (top, share) = regions[0];
        assert_eq!(a.profile().func_name(top), "hypre_boomerAMGRelax._omp");
        assert!(
            share > 0.5,
            "relax explains most of the cost, got {share:.2}"
        );
    }

    #[test]
    fn vectors_show_full_range_pattern_in_matvec() {
        let a = profiled(AmgVariant::Baseline, 2);
        let var = a.profile().var_by_name("rhs").unwrap().id;
        let mv = region_id(&a, "hypre_ParCSRMatvec._omp");
        let pattern = classify(&a.thread_ranges(var, RangeScope::Region(mv)));
        assert_eq!(pattern, AccessPattern::FullRange);
    }

    #[test]
    fn indirect_access_is_attributed_to_the_variable() {
        // The paper's point: code-centric analysis sees only
        // `RAP_diag_data[A_diag_i[i]]`; data-centric attribution still
        // resolves every sample to RAP_diag_data.
        let a = profiled(AmgVariant::Baseline, 8);
        let hot = a.hot_variables();
        assert!(hot.iter().any(|v| v.name == "RAP_diag_data"));
        let rap = hot.iter().find(|v| v.name == "RAP_diag_data").unwrap();
        assert!(rap.metrics.samples_mem > 0);
        assert!(rap.alloc_path.contains("hypre_BoomerAMGSetup"));
    }

    #[test]
    fn guided_beats_interleaved_beats_baseline_on_solve() {
        let solve = |variant| {
            let app = Amg2006::tiny(variant);
            let (_, out) = run_unmonitored(&app, machine(), 8, ExecMode::Sequential);
            out.phase("solve").unwrap()
        };
        let base = solve(AmgVariant::Baseline);
        let inter = solve(AmgVariant::InterleavedAll);
        let guided = solve(AmgVariant::Guided);
        assert!(inter < base, "interleave helps: {inter} vs {base}");
        assert!(guided < inter, "guided mix is best: {guided} vs {inter}");
    }

    #[test]
    fn guided_blocks_land_in_accessing_domains() {
        let m = machine();
        let app = Amg2006::tiny(AmgVariant::Guided);
        let (_, _, profile) = run_profiled(
            &app,
            m.clone(),
            8,
            ExecMode::Sequential,
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 64)),
        );
        let rap = profile.var_by_name("RAP_diag_data").unwrap();
        let hist = m.page_map().binding_histogram(rap.addr).unwrap();
        assert!(
            hist.iter().all(|&c| c > 0),
            "block-wise across all domains: {hist:?}"
        );
        let u = profile.var_by_name("u").unwrap();
        let uh = m.page_map().binding_histogram(u.addr).unwrap();
        let max = *uh.iter().max().unwrap();
        let min = *uh.iter().min().unwrap();
        assert!(max - min <= 1, "u interleaved evenly: {uh:?}");
    }
}
