//! UMT2013 mini-app (§8.4).
//!
//! Deterministic radiation transport: the paper profiles it on POWER7 with
//! MRK (32 threads, 4 domains), sampling L3-miss events. The hot variable
//! is `STime`, a three-dimensional array `STime(ig, c, Angle)` — the inner
//! loops of Figure 10 sweep groups and corners for a fixed angle, and
//! two-dimensional angle *planes* are assigned to threads round-robin.
//!
//! Because the master thread allocates and initializes `STime`, every
//! plane lands in domain 0; each thread then reads planes scattered across
//! the whole array (a staggered pattern like Blackscholes' buffer). The
//! fix parallelizes the initialization so each thread first-touches
//! exactly the planes it later sweeps — a 7% end-to-end win in the paper.

use crate::harness::{timed_phase, Workload, WorkloadOutput};
use numa_machine::PlacementPolicy;
use numa_sim::Program;
use serde::{Deserialize, Serialize};

/// Variants of the UMT2013 case study.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum UmtVariant {
    /// Master-thread initialization of `STime`.
    Baseline,
    /// Parallel initialization: each thread first-touches its own
    /// round-robin angle planes.
    ParallelFirstTouch,
}

/// UMT2013 mini-app parameters.
#[derive(Clone, Debug)]
pub struct Umt2013 {
    pub groups: u64,
    pub corners: u64,
    pub angles: u64,
    /// Transport sweeps.
    pub iterations: usize,
    pub variant: UmtVariant,
}

const W: u64 = 8;

impl Umt2013 {
    pub fn new(
        groups: u64,
        corners: u64,
        angles: u64,
        iterations: usize,
        variant: UmtVariant,
    ) -> Self {
        assert!(groups * corners >= 64, "planes must span multiple lines");
        Umt2013 {
            groups,
            corners,
            angles,
            iterations,
            variant,
        }
    }

    pub fn tiny(variant: UmtVariant) -> Self {
        // 16 groups × 64 corners × 64 angles ≈ 0.5 MiB of STime.
        Umt2013::new(16, 64, 64, 2, variant)
    }

    fn plane_elems(&self) -> u64 {
        self.groups * self.corners
    }

    fn stime_bytes(&self) -> u64 {
        self.plane_elems() * self.angles * W
    }
}

impl Workload for Umt2013 {
    fn name(&self) -> &'static str {
        "UMT2013"
    }

    fn execute(&self, program: &mut Program) -> WorkloadOutput {
        let mut out = WorkloadOutput::default();
        let plane = self.plane_elems();
        let angles = self.angles;
        let stime_bytes = self.stime_bytes();
        let stotal_bytes = plane * W;

        let mut stime = 0;
        let mut psi = 0;
        let mut stotal = 0;
        let mut source = 0;
        program.serial("main", |ctx| {
            ctx.call("Teton::allocate", |ctx| {
                stime = ctx.alloc("STime", stime_bytes, PlacementPolicy::FirstTouch);
                // The angular flux: same shape as STime but swept in
                // contiguous angle blocks (different loops use different
                // decompositions in UMT).
                psi = ctx.alloc("Psi", stime_bytes, PlacementPolicy::FirstTouch);
                stotal = ctx.alloc("STotal", stotal_bytes, PlacementPolicy::FirstTouch);
                source = ctx.alloc("source", stotal_bytes, PlacementPolicy::FirstTouch);
            });
        });

        timed_phase(program, &mut out, "init", |p| {
            // Psi and the plane-sized arrays are always master-initialized:
            // the paper's fix targets STime's initialization loop only.
            p.serial("main", |ctx| {
                ctx.call("Teton::initialize", |ctx| {
                    ctx.store_range(psi, plane * angles, W as u32);
                    ctx.store_range(stotal, plane, W as u32);
                    ctx.store_range(source, plane, W as u32);
                });
            });
            match self.variant {
                UmtVariant::Baseline => {
                    p.serial("main", |ctx| {
                        ctx.call("Teton::initialize", |ctx| {
                            ctx.store_range(stime, plane * angles, W as u32);
                        });
                    });
                }
                UmtVariant::ParallelFirstTouch => {
                    p.parallel("Teton::initialize._omp", |tid, ctx| {
                        let n = ctx.num_threads() as u64;
                        // Each thread initializes exactly the planes it
                        // will sweep (round-robin by angle).
                        let mut a = tid as u64;
                        while a < angles {
                            ctx.store_range(stime + a * plane * W, plane, W as u32);
                            a += n;
                        }
                    });
                }
            }
        });

        timed_phase(program, &mut out, "sweep", |p| {
            for _ in 0..self.iterations {
                p.parallel("snflwxyz._omp", |tid, ctx| {
                    let n = ctx.num_threads() as u64;
                    let corners = self.corners;
                    let groups = self.groups;
                    ctx.loop_scope("angle_loop", |ctx| {
                        let mut angle = tid as u64;
                        // Figure 10's kernel: source = STotal(ig,c) +
                        // STime(ig,c,Angle), angles round-robin to threads.
                        while angle < angles {
                            ctx.at_line(612);
                            for c in 0..corners {
                                for ig in 0..groups {
                                    let idx = (c * groups + ig) + angle * plane;
                                    ctx.load(stotal + (c * groups + ig) * W, 8);
                                    ctx.load(stime + idx * W, 8);
                                    ctx.compute(6);
                                    ctx.store(source + (c * groups + ig) * W, 8);
                                }
                            }
                            angle += n;
                        }
                        ctx.at_line(0);
                    });
                    // The flux update sweeps Psi in contiguous angle
                    // blocks (a different decomposition than STime's
                    // round-robin).
                    ctx.loop_scope("flux_update", |ctx| {
                        ctx.at_line(701);
                        let per = angles.div_ceil(n);
                        let lo = (tid as u64 * per).min(angles);
                        let hi = ((tid as u64 + 1) * per).min(angles);
                        for angle in lo..hi {
                            for e in 0..plane {
                                let idx = e + angle * plane;
                                ctx.load(psi + idx * W, 8);
                                ctx.compute(4);
                                ctx.store(psi + idx * W, 8);
                            }
                        }
                        ctx.at_line(0);
                    });
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_profiled, run_unmonitored};
    use numa_analysis::{classify, AccessPattern, Analyzer};
    use numa_machine::{Machine, MachinePreset};
    use numa_profiler::{ProfilerConfig, RangeScope};
    use numa_sampling::{MechanismConfig, MechanismKind};
    use numa_sim::ExecMode;

    fn machine() -> Machine {
        Machine::from_preset(MachinePreset::IbmPower7)
    }

    fn analyzer(variant: UmtVariant, period: u64) -> Analyzer {
        let app = Umt2013::tiny(variant);
        let (_, _, profile) = run_profiled(
            &app,
            machine(),
            32,
            ExecMode::Sequential,
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Mrk, period)),
        );
        Analyzer::new(profile)
    }

    #[test]
    fn stime_remote_fraction_is_high_at_baseline() {
        let a = analyzer(UmtVariant::Baseline, 1);
        let program = a.program();
        // Paper: 86% of L3 misses access remote memory. With 4 domains and
        // threads spread evenly, ≈3/4 of requests to domain-0 data are
        // remote.
        assert!(
            program.remote_fraction > 0.6,
            "remote fraction {:.2}",
            program.remote_fraction
        );
        let hot = a.hot_variables();
        assert!(
            hot.iter().take(2).any(|v| v.name == "STime"),
            "STime is among the hottest remote variables: {:?}",
            hot.iter().map(|v| &v.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stime_pattern_is_staggered_across_threads() {
        let a = analyzer(UmtVariant::Baseline, 1);
        let stime = a.profile().var_by_name("STime").unwrap().id;
        let pattern = classify(&a.thread_ranges(stime, RangeScope::Program));
        // Round-robin planes: every thread's [min,max] covers almost the
        // whole array with slightly ascending starts — the paper likens it
        // to Blackscholes' buffer (staggered/overlapping; at full overlap
        // the classifier may call it full-range, both are "shared" shapes).
        assert!(
            matches!(
                pattern,
                AccessPattern::StaggeredOverlap | AccessPattern::FullRange
            ),
            "got {pattern:?}"
        );
    }

    #[test]
    fn parallel_first_touch_colocates_planes() {
        let m = machine();
        let app = Umt2013::tiny(UmtVariant::ParallelFirstTouch);
        let (_, _, profile) = run_profiled(
            &app,
            m.clone(),
            32,
            ExecMode::Sequential,
            ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Mrk, 1)),
        );
        let stime = profile.var_by_name("STime").unwrap();
        let hist = m.page_map().binding_histogram(stime.addr).unwrap();
        let populated = hist.iter().filter(|&&c| c > 0).count();
        assert_eq!(
            populated, 4,
            "planes spread over all four domains: {hist:?}"
        );
    }

    #[test]
    fn parallel_first_touch_reduces_remote_accesses_and_time() {
        // "This optimization eliminates most remote accesses to STime."
        let stime_remote = |a: &Analyzer| {
            let id = a.profile().var_by_name("STime").unwrap().id;
            a.var_metrics(id).m_remote
        };
        let a_base = analyzer(UmtVariant::Baseline, 1);
        let a_opt = analyzer(UmtVariant::ParallelFirstTouch, 1);
        let base_remote = stime_remote(&a_base);
        let opt_remote = stime_remote(&a_opt);
        assert!(
            (opt_remote as f64) < base_remote as f64 * 0.2,
            "remote STime events drop: {base_remote} → {opt_remote}"
        );
        let (base, _) = run_unmonitored(
            &Umt2013::tiny(UmtVariant::Baseline),
            machine(),
            32,
            ExecMode::Sequential,
        );
        let (opt, _) = run_unmonitored(
            &Umt2013::tiny(UmtVariant::ParallelFirstTouch),
            machine(),
            32,
            ExecMode::Sequential,
        );
        assert!(opt.elapsed_cycles < base.elapsed_cycles);
    }

    #[test]
    fn first_touch_site_points_to_initialize() {
        let a = analyzer(UmtVariant::Baseline, 1);
        let stime = a.profile().var_by_name("STime").unwrap().id;
        let sites = a.first_touch_sites(stime);
        assert_eq!(sites.len(), 1);
        assert!(
            sites[0].2.contains("Teton::initialize"),
            "first touch path: {}",
            sites[0].2
        );
    }
}
