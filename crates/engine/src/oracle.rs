//! The pre-engine scan paths, kept verbatim as the equivalence oracle.
//!
//! Every function here answers a query by walking the raw profile the
//! way the analysis layer did before the indexed engine existed. They
//! exist for two callers only:
//!
//! * the proptest equivalence suite (`tests/equivalence.rs`), which
//!   proves every engine query byte-matches the scan answer on random
//!   profiles, and
//! * the `engine_queries` bench, whose `scan_*` rows measure what a
//!   query cost before the index.
//!
//! No production path calls this module; treat it as frozen reference
//! code.

use crate::engine::ThreadRange;
use numa_machine::DomainId;
use numa_profiler::{Cct, MetricSet, NumaProfile, RangeKey, RangeScope, RangeStat, VarId, ROOT};
use numa_sim::FuncId;
use rayon::prelude::*;
use std::collections::HashMap;

/// The old `Analyzer::new` merge: totals, per-var totals, and merged
/// ranges in one parallel fold over threads.
pub type MergedTables = (
    MetricSet,
    HashMap<VarId, MetricSet>,
    HashMap<RangeKey, RangeStat>,
);

/// Merge all thread profiles (the §7.2 reduction) by scanning.
pub fn merge_threads(profile: &NumaProfile) -> MergedTables {
    let domains = profile.domains;
    profile
        .threads
        .par_iter()
        .map(|t| {
            let mut vt: HashMap<VarId, MetricSet> = HashMap::new();
            for (v, m) in &t.var_metrics {
                vt.entry(*v)
                    .or_insert_with(|| MetricSet::new(domains))
                    .merge(m);
            }
            let mut mr: HashMap<RangeKey, RangeStat> = HashMap::new();
            for (k, s) in &t.ranges {
                mr.entry(*k).and_modify(|acc| acc.merge(s)).or_insert(*s);
            }
            (t.totals.clone(), vt, mr)
        })
        .reduce(
            || (MetricSet::new(domains), HashMap::new(), HashMap::new()),
            |(mut t1, mut v1, mut r1), (t2, v2, r2)| {
                t1.merge(&t2);
                for (k, m) in v2 {
                    v1.entry(k)
                        .or_insert_with(|| MetricSet::new(domains))
                        .merge(&m);
                }
                for (k, s) in r2 {
                    r1.entry(k).and_modify(|acc| acc.merge(&s)).or_insert(s);
                }
                (t1, v1, r1)
            },
        )
}

/// Merged metrics of one variable, recomputed from the raw threads
/// (zeroed when never sampled — the old `Analyzer::var_metrics`
/// contract).
pub fn var_metrics(profile: &NumaProfile, var: VarId) -> MetricSet {
    let mut out = MetricSet::new(profile.domains);
    for t in &profile.threads {
        for (v, m) in &t.var_metrics {
            if *v == var {
                out.merge(m);
            }
        }
    }
    out
}

/// The old `Analyzer::thread_ranges_with_threshold` scan.
pub fn thread_ranges(
    profile: &NumaProfile,
    var: VarId,
    scope: RangeScope,
    hot_bin_threshold: f64,
) -> Vec<ThreadRange> {
    let Some(rec) = profile.var(var) else {
        return Vec::new();
    };
    let extent = rec.bytes.max(1) as f64;
    let mut out = Vec::new();
    for t in &profile.threads {
        let mut thread_total = 0u64;
        let mut bin_weight: HashMap<u16, u64> = HashMap::new();
        for (k, s) in &t.ranges {
            if k.var == var && k.scope == scope {
                *bin_weight.entry(k.bin).or_insert(0) += s.count;
                thread_total += s.count;
            }
        }
        if thread_total == 0 {
            continue;
        }
        let mean = thread_total as f64 / bin_weight.len() as f64;
        let cut = (hot_bin_threshold * mean).max(2.0);
        let hot = |bin: u16| bin_weight[&bin] as f64 >= cut;
        let mut merged: Option<RangeStat> = None;
        for (k, s) in &t.ranges {
            if k.var == var && k.scope == scope && hot(k.bin) {
                match &mut merged {
                    Some(acc) => acc.merge(s),
                    None => merged = Some(*s),
                }
            }
        }
        if let Some(s) = merged {
            out.push(ThreadRange {
                tid: t.tid,
                min: s.min_addr.saturating_sub(rec.addr) as f64 / extent,
                max: s.max_addr.saturating_sub(rec.addr) as f64 / extent,
                samples: s.count,
                latency: s.latency,
            });
        }
    }
    out.sort_by_key(|r| r.tid);
    out
}

/// The old `Analyzer::var_regions` scan over the whole merged-range
/// table (recomputed here, as a cold query against the profile would).
pub fn var_regions(profile: &NumaProfile, var: VarId) -> Vec<(FuncId, f64)> {
    let (_, _, merged_ranges) = merge_threads(profile);
    var_regions_from(profile, &merged_ranges, var)
}

/// The per-query part of the old `var_regions`, given prebuilt merged
/// ranges (what a warm pre-refactor analyzer paid per call).
pub fn var_regions_from(
    profile: &NumaProfile,
    merged_ranges: &HashMap<RangeKey, RangeStat>,
    var: VarId,
) -> Vec<(FuncId, f64)> {
    let mut per_region: HashMap<FuncId, u64> = HashMap::new();
    let mut program_total = 0u64;
    let use_latency = profile.capabilities.latency;
    for (k, s) in merged_ranges {
        if k.var != var {
            continue;
        }
        let w = if use_latency {
            s.latency_remote
        } else {
            s.count
        };
        match k.scope {
            RangeScope::Program => program_total += w,
            RangeScope::Region(r) => *per_region.entry(r).or_insert(0) += w,
        }
    }
    if program_total == 0 {
        return Vec::new();
    }
    let mut out: Vec<(FuncId, f64)> = per_region
        .into_iter()
        .map(|(r, w)| (r, w as f64 / program_total as f64))
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
    out
}

/// The old `Analyzer::first_touch_sites` filter scan.
pub fn first_touch_sites(profile: &NumaProfile, var: VarId) -> Vec<(usize, DomainId, String)> {
    profile
        .first_touches
        .iter()
        .filter(|ft| ft.var == var)
        .map(|ft| {
            let path = ft
                .path
                .iter()
                .map(|f| profile.func_name(f.func).to_string())
                .collect::<Vec<_>>()
                .join(" > ");
            (ft.tid, ft.domain, path)
        })
        .collect()
}

/// The old `Analyzer::merged_cct`: rebuild the merged tree per call.
pub fn merged_cct(profile: &NumaProfile) -> Cct {
    let mut merged = Cct::new(profile.domains);
    for t in &profile.threads {
        for id in 0..t.cct.len() as numa_profiler::NodeId {
            let node = t.cct.node(id);
            if node.metrics == MetricSet::new(profile.domains) {
                continue;
            }
            let path = t.cct.path_to(id);
            let mut cur = ROOT;
            for &pid in path.iter().skip(1) {
                cur = merged.child(cur, t.cct.node(pid).key);
            }
            merged.node_mut(cur).metrics.merge(&node.metrics);
        }
    }
    merged
}

/// The old linear name lookups (`NumaProfile::var_by_name` /
/// `func_names.iter().position`).
pub fn var_named(profile: &NumaProfile, name: &str) -> Option<VarId> {
    profile.var_by_name(name).map(|rec| rec.id)
}

pub fn func_named(profile: &NumaProfile, name: &str) -> Option<FuncId> {
    profile
        .func_names
        .iter()
        .position(|n| n == name)
        .map(|i| FuncId(i as u32))
}
