//! [`Engine`]: an `Arc`-shared profile plus its prebuilt
//! [`ProfileIndex`], answering every attribution query without cloning
//! or re-scanning the profile.

use crate::index::ProfileIndex;
use numa_machine::DomainId;
use numa_profiler::{
    Cct, FirstTouchRecord, MetricSet, NumaProfile, RangeKey, RangeScope, RangeStat, ThreadProfile,
    Trace, VarId,
};
use numa_sim::FuncId;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-thread normalized \[min,max\] accessed range of one variable under
/// one scope — a column of the paper's address-centric view (Figure 3's
/// upper-right pane).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThreadRange {
    pub tid: usize,
    /// Normalized to the variable extent: 0.0 = first byte, 1.0 = last.
    pub min: f64,
    pub max: f64,
    pub samples: u64,
    pub latency: u64,
}

/// The one parallel merge shape of the workspace: fold `items` to
/// per-chunk partials under the active rayon pool, then reduce pairwise.
/// `reduce` must be associative and agree with `identity` as its unit;
/// every merge in this workspace is a commutative counter sum, so the
/// chunking cannot change results.
pub fn par_fold<I, T, ID, M, R>(items: &[I], identity: ID, map: M, reduce: R) -> T
where
    I: Sync,
    T: Send,
    ID: Fn() -> T + Sync,
    M: Fn(&I) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    items.par_iter().map(&map).reduce(&identity, &reduce)
}

/// The shared query engine over one profile.
///
/// Construction builds the [`ProfileIndex`] once (cost: one parallel
/// fold over threads plus a sort); afterwards the engine is immutable
/// and freely shareable across threads behind an `Arc` — the store
/// caches one per profile and the daemon serves every analysis request
/// from it with zero profile copies.
pub struct Engine {
    profile: Arc<NumaProfile>,
    index: ProfileIndex,
}

impl Engine {
    pub fn new(profile: Arc<NumaProfile>) -> Engine {
        let index = ProfileIndex::build(&profile);
        Engine { profile, index }
    }

    /// [`Engine::new`] with pre-extracted per-thread scalar columns —
    /// the binary codec's decode path hands its columns to the index
    /// builder directly (see [`ProfileIndex::build_with`]).
    pub fn with_scalars(profile: Arc<NumaProfile>, scalars: crate::index::ThreadScalars) -> Engine {
        let index = ProfileIndex::build_with(&profile, Some(&scalars));
        Engine { profile, index }
    }

    pub fn profile(&self) -> &NumaProfile {
        &self.profile
    }

    /// The shared profile handle (no deep copy).
    pub fn profile_arc(&self) -> &Arc<NumaProfile> {
        &self.profile
    }

    pub fn index(&self) -> &ProfileIndex {
        &self.index
    }

    /// Program-wide merged metrics.
    pub fn totals(&self) -> &MetricSet {
        self.index.totals()
    }

    /// Absolute instructions retired over all threads (Eq. 3's `I`).
    pub fn total_instructions(&self) -> u64 {
        self.index.instructions()
    }

    /// Absolute eligible NUMA events over all threads (Eq. 3's
    /// `E_NUMA`).
    pub fn total_numa_events(&self) -> u64 {
        self.index.numa_events()
    }

    /// Merged metrics of one variable; `None` if it was never sampled.
    pub fn var_metrics(&self, var: VarId) -> Option<&MetricSet> {
        self.index.var_metrics(var)
    }

    /// Sorted (by `VarId`) per-variable merged metric columns.
    pub fn var_columns(&self) -> &[(VarId, MetricSet)] {
        self.index.var_columns()
    }

    /// Merged stat of one exact range key.
    pub fn merged_range(&self, key: &RangeKey) -> Option<&RangeStat> {
        self.index.merged_range(key)
    }

    /// All-thread merged ranges of one variable across scopes and bins.
    pub fn ranges_of(&self, var: VarId) -> &[(RangeKey, RangeStat)] {
        self.index.ranges_of(var)
    }

    /// Per-thread normalized \[min,max\] ranges of `var` under `scope`,
    /// merged over each thread's *hot* bins (§5.2). A bin is hot for a
    /// thread if it holds at least `hot_bin_threshold` of the thread's
    /// mean per-bin weight (floor: 2 samples). Unknown variables yield
    /// an empty vector.
    pub fn thread_ranges(
        &self,
        var: VarId,
        scope: RangeScope,
        hot_bin_threshold: f64,
    ) -> Vec<ThreadRange> {
        let Some(rec) = self.profile.var(var) else {
            return Vec::new();
        };
        let extent = rec.bytes.max(1) as f64;
        let rows = self.index.thread_rows(var, scope);
        let mut out = Vec::new();
        let mut i = 0;
        while i < rows.len() {
            let mut j = i;
            while j < rows.len() && rows[j].thread_idx == rows[i].thread_idx {
                j += 1;
            }
            let group = &rows[i..j];
            let thread_total: u64 = group.iter().map(|r| r.stat.count).sum();
            if thread_total > 0 {
                let mean = thread_total as f64 / group.len() as f64;
                let cut = (hot_bin_threshold * mean).max(2.0);
                let mut merged: Option<RangeStat> = None;
                for r in group {
                    if r.stat.count as f64 >= cut {
                        match &mut merged {
                            Some(acc) => acc.merge(&r.stat),
                            None => merged = Some(r.stat),
                        }
                    }
                }
                if let Some(s) = merged {
                    let tid = self
                        .profile
                        .threads
                        .get(rows[i].thread_idx as usize)
                        .map_or(0, |t| t.tid);
                    out.push(ThreadRange {
                        tid,
                        // Saturate: a corrupted range whose addresses
                        // fall below the variable's base must not wrap
                        // to huge offsets.
                        min: s.min_addr.saturating_sub(rec.addr) as f64 / extent,
                        max: s.max_addr.saturating_sub(rec.addr) as f64 / extent,
                        samples: s.count,
                        latency: s.latency,
                    });
                }
            }
            i = j;
        }
        // Rows are grouped by thread position; present by tid. The sort
        // is stable, so threads sharing a tid keep position order.
        out.sort_by_key(|r| r.tid);
        out
    }

    /// Parallel regions in which `var` was sampled, with each region's
    /// share of the variable's cost (NUMA latency if available, else
    /// samples), descending. Unknown variables yield an empty vector.
    pub fn var_regions(&self, var: VarId) -> Vec<(FuncId, f64)> {
        let use_latency = self.profile.capabilities.latency;
        let mut program_total = 0u64;
        let mut per_region: Vec<(FuncId, u64)> = Vec::new();
        for (k, s) in self.index.ranges_of(var) {
            let w = if use_latency {
                s.latency_remote
            } else {
                s.count
            };
            match k.scope {
                RangeScope::Program => program_total += w,
                RangeScope::Region(r) => match per_region.iter_mut().find(|(f, _)| *f == r) {
                    // Bins of one region are adjacent in the sorted
                    // slice, so this inner scan touches at most the
                    // region count — not the range table.
                    Some((_, acc)) => *acc += w,
                    None => per_region.push((r, w)),
                },
            }
        }
        if program_total == 0 {
            return Vec::new();
        }
        let mut out: Vec<(FuncId, f64)> = per_region
            .into_iter()
            .map(|(r, w)| (r, w as f64 / program_total as f64))
            .collect();
        // total_cmp: shares are finite here, but a NaN (degenerate
        // profile) must not panic the sort.
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        out
    }

    /// First-touch records of one variable, in record order.
    pub fn first_touches(&self, var: VarId) -> impl Iterator<Item = &FirstTouchRecord> {
        self.index
            .first_touch_indices(var)
            .iter()
            .filter_map(|&i| self.profile.first_touches.get(i as usize))
    }

    /// The merged all-thread calling context tree (prebuilt; borrow, do
    /// not rebuild).
    pub fn merged_cct(&self) -> &Cct {
        self.index.merged_cct()
    }

    /// `(tid, trace)` of every thread that recorded a trace.
    pub fn traced_threads(&self) -> Vec<(usize, &Trace)> {
        self.index
            .traced_thread_indices()
            .iter()
            .filter_map(|&i| self.profile.threads.get(i as usize))
            .map(|t| (t.tid, &t.trace))
            .collect()
    }

    /// Every region sampled as an address-centric scope, ascending.
    pub fn sampled_regions(&self) -> &[FuncId] {
        self.index.sampled_regions()
    }

    /// Interned lookup: first variable with this source name.
    pub fn var_named(&self, name: &str) -> Option<VarId> {
        self.index.var_named(name)
    }

    /// Interned lookup: first function with this name.
    pub fn func_named(&self, name: &str) -> Option<FuncId> {
        self.index.func_named(name)
    }

    /// Domain-specific first-touch listing used by the analyzer: (tid,
    /// domain, rendered call path).
    pub fn first_touch_sites(&self, var: VarId) -> Vec<(usize, DomainId, String)> {
        self.first_touches(var)
            .map(|ft| {
                let path = ft
                    .path
                    .iter()
                    .map(|f| self.profile.func_name(f.func).to_string())
                    .collect::<Vec<_>>()
                    .join(" > ");
                (ft.tid, ft.domain, path)
            })
            .collect()
    }

    /// Parallel fold over the profile's threads — the merge shape both
    /// the analyzer's totals and the store's cross-run aggregation use.
    pub fn fold_threads<T, ID, M, R>(&self, identity: ID, map: M, reduce: R) -> T
    where
        T: Send,
        ID: Fn() -> T + Sync,
        M: Fn(&ThreadProfile) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        par_fold(&self.profile.threads, identity, map, reduce)
    }

    /// Parallel fold over the per-variable merged metric columns.
    pub fn fold_vars<T, ID, M, R>(&self, identity: ID, map: M, reduce: R) -> T
    where
        T: Send,
        ID: Fn() -> T + Sync,
        M: Fn(VarId, &MetricSet) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        par_fold(
            self.index.var_columns(),
            identity,
            |(v, m)| map(*v, m),
            reduce,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_fold_sums_like_sequential() {
        let items: Vec<u64> = (0..1000).collect();
        let sum = par_fold(&items, || 0u64, |&x| x, |a, b| a + b);
        assert_eq!(sum, items.iter().sum::<u64>());
    }

    #[test]
    fn par_fold_empty_is_identity() {
        let items: Vec<u64> = Vec::new();
        assert_eq!(par_fold(&items, || 7u64, |&x| x, |a, b| a + b), 7);
    }
}
