//! The per-profile columnar index: every attribution artifact the
//! analysis layers query repeatedly, built once.
//!
//! Build cost is one rayon-parallel fold over threads (the §7.2 merge
//! with its `[min,max]` range reduction) plus one sort of the flattened
//! per-thread range rows; afterwards every query is a hash probe, a
//! binary search, or a contiguous slice walk over exactly the rows it
//! needs.

use crate::engine::par_fold;
use crate::intern::{Symbol, SymbolTable};
use numa_profiler::{Cct, MetricSet, NumaProfile, RangeKey, RangeScope, RangeStat, VarId, ROOT};
use numa_sim::FuncId;
use std::collections::HashMap;

/// One thread's merged stat for one (variable, scope, bin) cell —
/// duplicate cells within a thread are merged at build time.
#[derive(Clone, Copy, Debug)]
pub struct ThreadBinRow {
    /// Index into `profile.threads` (not the tid: malformed profiles may
    /// repeat tids, and per-thread hotness must stay per *thread*).
    pub thread_idx: u32,
    pub bin: u16,
    pub stat: RangeStat,
}

/// Scope ordering for the sorted range tables. `RangeScope` has no `Ord`;
/// Program sorts before every region.
fn scope_ord(scope: RangeScope) -> u64 {
    match scope {
        RangeScope::Program => 0,
        RangeScope::Region(f) => 1 + f.0 as u64,
    }
}

fn range_key_ord(k: &RangeKey) -> (u32, u64, u16) {
    (k.var.0, scope_ord(k.scope), k.bin)
}

/// Per-thread scalar columns handed to the index builder by a decoder
/// that already has them in columnar form (the binary profile codec
/// stores them as contiguous per-metric columns). One entry per thread,
/// in `profile.threads` order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadScalars {
    /// Instructions retired per thread (Eq. 3's per-thread `I`).
    pub instructions: Vec<u64>,
    /// Eligible NUMA events per thread (Eq. 3's per-thread `E_NUMA`).
    pub numa_events: Vec<u64>,
}

impl ThreadScalars {
    /// Whether these columns can stand in for `profile`'s per-thread
    /// scalars: every column must have exactly one entry per thread.
    fn matches(&self, profile: &NumaProfile) -> bool {
        let n = profile.threads.len();
        self.instructions.len() == n && self.numa_events.len() == n
    }
}

/// The prebuilt index over one [`NumaProfile`].
pub struct ProfileIndex {
    /// Program-wide merged metrics.
    totals: MetricSet,
    /// Absolute instructions retired, summed over threads (Eq. 3's `I`).
    instructions: u64,
    /// Absolute eligible NUMA events, summed over threads (Eq. 3's
    /// `E_NUMA`).
    numa_events: u64,
    /// Per-variable merged metrics, sorted by `VarId`.
    vars: Vec<(VarId, MetricSet)>,
    /// All-thread merged ranges, sorted by (var, scope, bin).
    ranges: Vec<(RangeKey, RangeStat)>,
    /// Half-open span of each variable's rows in `ranges`.
    range_spans: HashMap<VarId, (u32, u32)>,
    /// Per-thread rows, sorted by (var, scope, thread_idx, bin).
    rows: Vec<ThreadBinRow>,
    /// Half-open span of each (var, scope)'s rows in `rows`.
    row_spans: HashMap<(VarId, RangeScope), (u32, u32)>,
    /// Indices into `profile.first_touches`, in record order.
    first_touch: HashMap<VarId, Vec<u32>>,
    /// Indices of threads carrying trace data.
    traced: Vec<u32>,
    /// Every `FuncId` that appears as a region scope, ascending.
    regions: Vec<FuncId>,
    /// The merged all-thread calling context tree.
    merged_cct: Cct,
    /// Interned names (funcs, vars, machine share one table).
    symbols: SymbolTable,
    /// Symbol of `func_names[i]` / `vars[i].name` / the machine name.
    func_syms: Vec<Symbol>,
    var_syms: Vec<Symbol>,
    machine_sym: Symbol,
    /// First variable / function carrying each name (mirrors the
    /// first-match contract of `NumaProfile::var_by_name`).
    var_by_name: HashMap<Symbol, VarId>,
    func_by_name: HashMap<Symbol, FuncId>,
}

impl ProfileIndex {
    /// Build the full index. The thread merge runs under the active
    /// rayon pool; everything else is one pass over the merged data.
    pub fn build(profile: &NumaProfile) -> ProfileIndex {
        Self::build_with(profile, None)
    }

    /// [`ProfileIndex::build`] with optional pre-extracted per-thread
    /// scalar columns. When `scalars` is present and aligned with the
    /// profile (one entry per thread), the program-wide instruction and
    /// NUMA-event totals are summed straight from the columns — the
    /// binary codec's decode path hands its columnar slices here
    /// without routing them through per-thread structs. Misaligned
    /// columns are ignored (the profile itself is always authoritative).
    pub fn build_with(profile: &NumaProfile, scalars: Option<&ThreadScalars>) -> ProfileIndex {
        let domains = profile.domains;
        let column_sums = scalars.filter(|s| s.matches(profile)).map(|s| {
            (
                s.instructions.iter().sum::<u64>(),
                s.numa_events.iter().sum::<u64>(),
            )
        });

        // The §7.2 merge: fold per-thread partials, reduce pairwise.
        // Metric/range merges are commutative sums, so the reduction
        // order cannot change the result.
        type Partial = (
            MetricSet,
            u64,
            u64,
            HashMap<VarId, MetricSet>,
            HashMap<RangeKey, RangeStat>,
        );
        let (totals, folded_instructions, folded_numa_events, var_map, merged): Partial = par_fold(
            &profile.threads,
            || {
                (
                    MetricSet::new(domains),
                    0,
                    0,
                    HashMap::new(),
                    HashMap::new(),
                )
            },
            |t| {
                let mut vt: HashMap<VarId, MetricSet> = HashMap::new();
                for (v, m) in &t.var_metrics {
                    vt.entry(*v)
                        .or_insert_with(|| MetricSet::new(domains))
                        .merge(m);
                }
                let mut mr: HashMap<RangeKey, RangeStat> = HashMap::new();
                for (k, s) in &t.ranges {
                    mr.entry(*k).and_modify(|acc| acc.merge(s)).or_insert(*s);
                }
                (t.totals.clone(), t.instructions, t.numa_events, vt, mr)
            },
            |(mut t1, i1, e1, mut v1, mut r1), (t2, i2, e2, v2, r2)| {
                t1.merge(&t2);
                for (k, m) in v2 {
                    v1.entry(k)
                        .or_insert_with(|| MetricSet::new(domains))
                        .merge(&m);
                }
                for (k, s) in r2 {
                    r1.entry(k).and_modify(|acc| acc.merge(&s)).or_insert(s);
                }
                (t1, i1 + i2, e1 + e2, v1, r1)
            },
        );
        let (instructions, numa_events) =
            column_sums.unwrap_or((folded_instructions, folded_numa_events));

        // Data-centric column: sorted (VarId, MetricSet) pairs.
        let mut vars: Vec<(VarId, MetricSet)> = var_map.into_iter().collect();
        vars.sort_by_key(|(v, _)| *v);

        // Address-centric tables: merged ranges sorted by (var, scope,
        // bin) with per-variable spans.
        let mut ranges: Vec<(RangeKey, RangeStat)> = merged.into_iter().collect();
        ranges.sort_by_key(|(k, _)| range_key_ord(k));
        let mut range_spans: HashMap<VarId, (u32, u32)> = HashMap::new();
        for (i, (k, _)) in ranges.iter().enumerate() {
            let span = range_spans.entry(k.var).or_insert((i as u32, i as u32));
            span.1 = i as u32 + 1;
        }

        // Per-thread rows for the address-centric view: one cell per
        // (var, scope, thread, bin), duplicates within a thread merged.
        let mut rows: Vec<(RangeKey, ThreadBinRow)> = Vec::new();
        for (ti, t) in profile.threads.iter().enumerate() {
            for (k, s) in &t.ranges {
                rows.push((
                    *k,
                    ThreadBinRow {
                        thread_idx: ti as u32,
                        bin: k.bin,
                        stat: *s,
                    },
                ));
            }
        }
        rows.sort_by_key(|(k, r)| (k.var.0, scope_ord(k.scope), r.thread_idx, k.bin));
        let mut dedup: Vec<(RangeKey, ThreadBinRow)> = Vec::with_capacity(rows.len());
        for (k, r) in rows {
            match dedup.last_mut() {
                Some((pk, pr)) if *pk == k && pr.thread_idx == r.thread_idx => {
                    pr.stat.merge(&r.stat);
                }
                _ => dedup.push((k, r)),
            }
        }
        let mut row_spans: HashMap<(VarId, RangeScope), (u32, u32)> = HashMap::new();
        for (i, (k, _)) in dedup.iter().enumerate() {
            let span = row_spans
                .entry((k.var, k.scope))
                .or_insert((i as u32, i as u32));
            span.1 = i as u32 + 1;
        }
        let mut regions: Vec<FuncId> = row_spans
            .keys()
            .filter_map(|(_, scope)| match scope {
                RangeScope::Region(f) => Some(*f),
                RangeScope::Program => None,
            })
            .collect();
        regions.sort_by_key(|f| f.0);
        regions.dedup();
        let rows: Vec<ThreadBinRow> = dedup.into_iter().map(|(_, r)| r).collect();

        // First-touch sites, preserving record order per variable.
        let mut first_touch: HashMap<VarId, Vec<u32>> = HashMap::new();
        for (i, ft) in profile.first_touches.iter().enumerate() {
            first_touch.entry(ft.var).or_default().push(i as u32);
        }

        let traced: Vec<u32> = profile
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.trace.is_empty())
            .map(|(i, _)| i as u32)
            .collect();

        // Code-centric pane: merge every thread's CCT, accumulating
        // exclusive metrics on shared paths. Sequential and in thread
        // order so node ids are deterministic.
        let empty = MetricSet::new(domains);
        let mut merged_cct = Cct::new(domains);
        for t in &profile.threads {
            for id in 0..t.cct.len() as numa_profiler::NodeId {
                let node = t.cct.node(id);
                if node.metrics == empty {
                    continue; // nothing attributed exactly here
                }
                let path = t.cct.path_to(id);
                let mut cur = ROOT;
                for &pid in path.iter().skip(1) {
                    cur = merged_cct.child(cur, t.cct.node(pid).key);
                }
                merged_cct.node_mut(cur).metrics.merge(&node.metrics);
            }
        }

        // Interned name spaces. First occurrence wins for both maps,
        // mirroring the linear first-match scans they replace.
        let symbols = SymbolTable::new();
        let func_syms: Vec<Symbol> = profile
            .func_names
            .iter()
            .map(|n| symbols.intern(n))
            .collect();
        let mut func_by_name: HashMap<Symbol, FuncId> = HashMap::new();
        for (i, sym) in func_syms.iter().enumerate() {
            func_by_name.entry(*sym).or_insert(FuncId(i as u32));
        }
        let var_syms: Vec<Symbol> = profile
            .vars
            .iter()
            .map(|rec| symbols.intern(&rec.name))
            .collect();
        let mut var_by_name: HashMap<Symbol, VarId> = HashMap::new();
        for (sym, rec) in var_syms.iter().zip(&profile.vars) {
            // Store the record's own id (not the table position): the
            // first-match contract must return exactly what
            // `NumaProfile::var_by_name(..).id` would.
            var_by_name.entry(*sym).or_insert(rec.id);
        }
        let machine_sym = symbols.intern(&profile.machine_name);

        ProfileIndex {
            totals,
            instructions,
            numa_events,
            vars,
            ranges,
            range_spans,
            rows,
            row_spans,
            first_touch,
            traced,
            regions,
            merged_cct,
            symbols,
            func_syms,
            var_syms,
            machine_sym,
            var_by_name,
            func_by_name,
        }
    }

    pub fn totals(&self) -> &MetricSet {
        &self.totals
    }

    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    pub fn numa_events(&self) -> u64 {
        self.numa_events
    }

    /// Sorted per-variable merged metrics.
    pub fn var_columns(&self) -> &[(VarId, MetricSet)] {
        &self.vars
    }

    /// Merged metrics of one variable (binary search).
    pub fn var_metrics(&self, var: VarId) -> Option<&MetricSet> {
        self.vars
            .binary_search_by_key(&var, |(v, _)| *v)
            .ok()
            .map(|i| &self.vars[i].1)
    }

    /// All-thread merged ranges of one variable, every scope and bin.
    pub fn ranges_of(&self, var: VarId) -> &[(RangeKey, RangeStat)] {
        match self.range_spans.get(&var) {
            Some(&(s, e)) => &self.ranges[s as usize..e as usize],
            None => &[],
        }
    }

    /// Merged stat of one exact range key (binary search).
    pub fn merged_range(&self, key: &RangeKey) -> Option<&RangeStat> {
        self.ranges
            .binary_search_by_key(&range_key_ord(key), |(k, _)| range_key_ord(k))
            .ok()
            .map(|i| &self.ranges[i].1)
    }

    /// Per-thread rows of one (variable, scope), grouped by thread.
    pub fn thread_rows(&self, var: VarId, scope: RangeScope) -> &[ThreadBinRow] {
        match self.row_spans.get(&(var, scope)) {
            Some(&(s, e)) => &self.rows[s as usize..e as usize],
            None => &[],
        }
    }

    /// Indices into `profile.first_touches` for one variable.
    pub fn first_touch_indices(&self, var: VarId) -> &[u32] {
        self.first_touch.get(&var).map_or(&[], Vec::as_slice)
    }

    /// Indices of threads with non-empty traces.
    pub fn traced_thread_indices(&self) -> &[u32] {
        &self.traced
    }

    /// Every region (`FuncId`) sampled as an address-centric scope.
    pub fn sampled_regions(&self) -> &[FuncId] {
        &self.regions
    }

    pub fn merged_cct(&self) -> &Cct {
        &self.merged_cct
    }

    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Symbol of a function name (aligned with `profile.func_names`).
    pub fn func_symbol(&self, f: FuncId) -> Option<Symbol> {
        self.func_syms.get(f.0 as usize).copied()
    }

    /// Symbol of a variable name (aligned with `profile.vars`).
    pub fn var_symbol(&self, v: VarId) -> Option<Symbol> {
        self.var_syms.get(v.0 as usize).copied()
    }

    pub fn machine_symbol(&self) -> Symbol {
        self.machine_sym
    }

    /// First variable with this name, interned lookup.
    pub fn var_named(&self, name: &str) -> Option<VarId> {
        self.symbols
            .lookup(name)
            .and_then(|sym| self.var_by_name.get(&sym).copied())
    }

    /// First function with this name, interned lookup.
    pub fn func_named(&self, name: &str) -> Option<FuncId> {
        self.symbols
            .lookup(name)
            .and_then(|sym| self.func_by_name.get(&sym).copied())
    }
}
