//! The shared attribution engine: one query path for every layer above
//! the profiler.
//!
//! The paper's three attribution views — code-centric (§5.1),
//! data-centric (§5.1), and address-centric (§5.2) — used to be derived
//! by each presentation layer re-walking an owned [`NumaProfile`]. This
//! crate centralizes that work:
//!
//! * [`intern::SymbolTable`] — thread-safe interning of function,
//!   variable, and machine names to dense `u32` ids, so name lookups are
//!   hash probes instead of `Vec<String>` scans.
//! * [`index::ProfileIndex`] — a compact columnar index built **once**
//!   per profile: merged totals, sorted per-variable [`MetricSet`](numa_profiler::MetricSet)
//!   columns, the `[min,max]`-reduced range table (§7.2) sorted by
//!   (variable, scope, bin), per-thread hot-bin rows, the first-touch
//!   site index, and the merged calling context tree.
//! * [`Engine`] — shares the profile by `Arc` (zero-copy: the store and
//!   the daemon hand out analyzers without cloning profiles) and answers
//!   every attribution query as an O(lookup) probe into the index.
//! * [`par_fold`] / [`Engine::fold_threads`] / [`Engine::fold_vars`] —
//!   the one rayon-parallel merge shape that the per-run analyzer and
//!   the store's cross-run aggregation are both built on.
//!
//! [`oracle`] retains the pre-engine scan paths purely as the
//! equivalence baseline for tests and benches; no production code calls
//! it.

pub mod engine;
pub mod index;
pub mod intern;
pub mod oracle;

pub use engine::{par_fold, Engine, ThreadRange};
pub use index::{ProfileIndex, ThreadScalars};
pub use intern::{Symbol, SymbolTable};

// Re-exported so downstream crates can name profile types through the
// engine without an extra direct dependency.
pub use numa_profiler::NumaProfile;
