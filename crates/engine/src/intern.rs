//! String interning: names → dense `u32` symbols.
//!
//! One table serves all three name spaces the profile carries (function
//! names, variable names, the machine name); callers keep their own
//! `Symbol → domain id` maps. Interning is write-once-read-many: the
//! fast path is a read-locked hash probe, the slow path upgrades to a
//! write lock and re-checks.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A dense interned-string id. Valid only against the [`SymbolTable`]
/// that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

#[derive(Default)]
struct Inner {
    map: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

/// Thread-safe string interner.
#[derive(Default)]
pub struct SymbolTable {
    inner: RwLock<Inner>,
}

impl SymbolTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable symbol. Idempotent.
    pub fn intern(&self, name: &str) -> Symbol {
        if let Some(&id) = self.inner.read().map.get(name) {
            return Symbol(id);
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.map.get(name) {
            return Symbol(id);
        }
        let id = inner.names.len() as u32;
        let arc: Arc<str> = Arc::from(name);
        inner.names.push(Arc::clone(&arc));
        inner.map.insert(arc, id);
        Symbol(id)
    }

    /// Look up an already-interned name without inserting.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.inner.read().map.get(name).copied().map(Symbol)
    }

    /// The string behind a symbol (`None` for a foreign symbol).
    pub fn resolve(&self, sym: Symbol) -> Option<Arc<str>> {
        self.inner.read().names.get(sym.0 as usize).cloned()
    }

    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_eq!(a, Symbol(0));
        assert_eq!(b, Symbol(1));
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a).as_deref(), Some("alpha"));
        assert_eq!(t.lookup("beta"), Some(b));
        assert_eq!(t.lookup("gamma"), None);
        assert_eq!(t.resolve(Symbol(9)), None);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let t = SymbolTable::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..64 {
                        t.intern(&format!("sym-{}", i % 8));
                    }
                });
            }
        });
        assert_eq!(t.len(), 8);
        // Every name resolves back to itself.
        for i in 0..8 {
            let name = format!("sym-{i}");
            let sym = t.lookup(&name).unwrap();
            assert_eq!(t.resolve(sym).as_deref(), Some(name.as_str()));
        }
    }
}
