//! Equivalence proof: every engine query answers byte-for-byte what the
//! pre-engine scan path (`numa_engine::oracle`) answers, on randomized
//! profiles — including malformed ones the index must degrade on
//! exactly like the scans did: dangling `VarId`s in metric and range
//! tables, duplicate thread ids, duplicate range cells within one
//! thread, out-of-range region ids, and variable records whose `id`
//! disagrees with their table position.

use numa_engine::{oracle, Engine};
use numa_machine::{CpuId, DomainId};
use numa_profiler::{
    Cct, FirstTouchRecord, MetricSet, NumaProfile, RangeKey, RangeScope, RangeStat, ThreadProfile,
    Trace, VarId, VarRecord,
};
use numa_sampling::{Capabilities, MechanismKind};
use numa_sim::{Frame, FrameKind, FuncId, VarKind};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic xorshift64* generator: the whole profile derives from
/// one proptest-supplied seed, so failures reproduce from the seed
/// alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

fn gen_metrics(r: &mut Rng, domains: usize) -> MetricSet {
    let mut m = MetricSet::new(domains);
    m.m_local = r.below(100);
    m.m_remote = r.below(100);
    for d in 0..domains {
        m.per_domain[d] = r.below(50);
    }
    m.latency_total = r.below(2000);
    m.latency_remote = r.below(1000);
    m.latency_samples = r.below(40);
    m.samples_mem = r.below(120);
    m.samples_instr = r.below(300);
    m.loads = r.below(80);
    m.stores = r.below(80);
    for slot in m.level_hist.iter_mut() {
        *slot = r.below(20);
    }
    m.first_touch_samples = r.below(8);
    m
}

fn gen_path(r: &mut Rng, nfuncs: usize) -> Vec<Frame> {
    (0..r.below(4))
        .map(|_| Frame {
            // +1: occasionally reference a function past the name table.
            func: FuncId(r.below(nfuncs as u64 + 1) as u32),
            kind: match r.below(3) {
                0 => FrameKind::Function,
                1 => FrameKind::ParallelRegion,
                _ => FrameKind::Loop,
            },
        })
        .collect()
}

fn gen_range_key(r: &mut Rng, nvars: usize, nfuncs: usize) -> RangeKey {
    RangeKey {
        // +2: dangling variable ids must behave like the scans.
        var: VarId(r.below(nvars as u64 + 2) as u32),
        bin: r.below(4) as u16,
        scope: if r.chance(2) {
            RangeScope::Program
        } else {
            RangeScope::Region(FuncId(r.below(nfuncs as u64 + 1) as u32))
        },
    }
}

fn gen_profile(seed: u64) -> NumaProfile {
    let mut r = Rng::new(seed);
    let domains = 1 + r.below(4) as usize;
    let nfuncs = 1 + r.below(6) as usize;
    let nvars = r.below(6) as usize;

    let vars: Vec<VarRecord> = (0..nvars)
        .map(|i| VarRecord {
            // Mostly id == table position, occasionally mismatched: the
            // engine's name lookup must return the record's own id,
            // exactly as `var_by_name(..).id` did.
            id: if r.chance(8) {
                VarId(r.below(nvars as u64 + 2) as u32)
            } else {
                VarId(i as u32)
            },
            // Duplicate names allowed: first match must win.
            name: format!("v{}", r.below(nvars as u64)),
            addr: 0x1000 + i as u64 * 0x10_0000,
            bytes: if r.chance(10) {
                0
            } else {
                1 + r.below(1 << 16)
            },
            kind: match r.below(3) {
                0 => VarKind::Heap,
                1 => VarKind::Static,
                _ => VarKind::Stack,
            },
            alloc_tid: r.below(8) as usize,
            alloc_path: gen_path(&mut r, nfuncs),
            bins: 1 + r.below(5) as u16,
            freed: r.chance(4),
        })
        .collect();

    let nthreads = r.below(6) as usize;
    let threads: Vec<ThreadProfile> = (0..nthreads)
        .map(|i| {
            let mut cct = Cct::new(domains);
            for _ in 0..r.below(6) {
                let stack = gen_path(&mut r, nfuncs);
                let line = r.below(5) as u32;
                let id = cct.resolve(&stack, line);
                let m = gen_metrics(&mut r, domains);
                cct.node_mut(id).metrics.merge(&m);
            }
            let var_metrics = (0..r.below(8))
                .map(|_| {
                    // Dangling ids and repeated entries for one var.
                    let v = VarId(r.below(nvars as u64 + 2) as u32);
                    (v, gen_metrics(&mut r, domains))
                })
                .collect();
            let mut ranges: Vec<(RangeKey, RangeStat)> = Vec::new();
            for _ in 0..r.below(10) {
                let key = if !ranges.is_empty() && r.chance(3) {
                    // Duplicate cell within the same thread: build-time
                    // dedup must merge it like per-query accumulation.
                    ranges[r.below(ranges.len() as u64) as usize].0
                } else {
                    gen_range_key(&mut r, nvars, nfuncs)
                };
                let lo = r.below(1 << 20);
                ranges.push((
                    key,
                    RangeStat {
                        min_addr: lo,
                        max_addr: lo + r.below(1 << 16),
                        count: r.below(40),
                        latency: r.below(500),
                        latency_remote: r.below(250),
                    },
                ));
            }
            ThreadProfile {
                // Duplicate tids allowed: they must stay separate rows.
                tid: if r.chance(3) { r.below(3) as usize } else { i },
                cpu: CpuId(r.below(32) as u16),
                domain: DomainId(r.below(domains as u64) as u8),
                cct,
                totals: gen_metrics(&mut r, domains),
                instructions: r.below(1 << 20),
                numa_events: r.below(1 << 12),
                var_metrics,
                ranges,
                trace: Trace::default(),
                stack_underflows: r.below(2),
            }
        })
        .collect();

    let first_touches = (0..r.below(8))
        .map(|_| FirstTouchRecord {
            var: VarId(r.below(nvars as u64 + 2) as u32),
            tid: r.below(8) as usize,
            cpu: CpuId(r.below(32) as u16),
            domain: DomainId(r.below(domains as u64) as u8),
            addr: r.below(1 << 30),
            is_store: r.chance(2),
            line: r.below(100) as u32,
            path: gen_path(&mut r, nfuncs),
        })
        .collect();

    let mechanism = match r.below(4) {
        0 => MechanismKind::Ibs,
        1 => MechanismKind::Mrk,
        2 => MechanismKind::Pebs,
        _ => MechanismKind::Dear,
    };
    NumaProfile {
        mechanism,
        capabilities: Capabilities::for_kind(mechanism),
        domains,
        machine_name: format!("rig-{}", r.below(4)),
        func_names: (0..nfuncs).map(|i| format!("fn{i}")).collect(),
        vars,
        threads,
        first_touches,
    }
}

/// Thresholds exercising both hot-bin regimes: below and above the
/// floor-of-2 cut.
const THRESHOLDS: &[f64] = &[0.0, 0.5, 1.0, 2.5];

proptest! {
    #[test]
    fn engine_queries_match_the_scan_oracle(seed in 0u64..u64::MAX) {
        let profile = gen_profile(seed);
        let engine = Engine::new(Arc::new(profile.clone()));
        let domains = profile.domains;

        // Program totals and the Eq. 3 counters.
        let (totals, _, merged_ranges) = oracle::merge_threads(&profile);
        prop_assert_eq!(engine.totals(), &totals);
        prop_assert_eq!(
            engine.total_instructions(),
            profile.total_instructions()
        );
        prop_assert_eq!(
            engine.total_numa_events(),
            profile.threads.iter().map(|t| t.numa_events).sum::<u64>()
        );

        // Every plausible id plus guaranteed-dangling ones.
        let probe_vars: Vec<VarId> = (0..profile.vars.len() as u32 + 2)
            .map(VarId)
            .chain([VarId(u32::MAX)])
            .collect();
        let probe_scopes: Vec<RangeScope> = std::iter::once(RangeScope::Program)
            .chain((0..profile.func_names.len() as u32 + 1).map(|f| RangeScope::Region(FuncId(f))))
            .collect();

        for &v in &probe_vars {
            let expect = oracle::var_metrics(&profile, v);
            let got = engine
                .var_metrics(v)
                .cloned()
                .unwrap_or_else(|| MetricSet::new(domains));
            prop_assert_eq!(got, expect, "var_metrics({:?})", v);

            prop_assert_eq!(
                engine.var_regions(v),
                oracle::var_regions(&profile, v),
                "var_regions({:?})", v
            );
            prop_assert_eq!(
                engine.first_touch_sites(v),
                oracle::first_touch_sites(&profile, v),
                "first_touch_sites({:?})", v
            );

            for &scope in &probe_scopes {
                for &th in THRESHOLDS {
                    prop_assert_eq!(
                        engine.thread_ranges(v, scope, th),
                        oracle::thread_ranges(&profile, v, scope, th),
                        "thread_ranges({:?}, {:?}, {})", v, scope, th
                    );
                }
                for bin in 0..4u16 {
                    let key = RangeKey { var: v, bin, scope };
                    prop_assert_eq!(
                        engine.merged_range(&key),
                        merged_ranges.get(&key),
                        "merged_range({:?})", key
                    );
                }
            }
        }

        // The merged CCT: `Cct` has no `PartialEq`, so compare the
        // serialized trees — node order is part of the contract (stable
        // ids for downstream renderers).
        let expect_cct = serde_json::to_string(&oracle::merged_cct(&profile)).unwrap();
        let got_cct = serde_json::to_string(engine.merged_cct()).unwrap();
        prop_assert_eq!(got_cct, expect_cct);

        // Interned name lookups vs. the linear scans, for present and
        // absent names of both tables.
        for name in profile.vars.iter().map(|v| v.name.as_str()).chain(["nope"]) {
            prop_assert_eq!(
                engine.var_named(name),
                oracle::var_named(&profile, name),
                "var_named({:?})", name
            );
        }
        for name in profile.func_names.iter().map(String::as_str).chain(["nope"]) {
            prop_assert_eq!(
                engine.func_named(name),
                oracle::func_named(&profile, name),
                "func_named({:?})", name
            );
        }
    }

    /// The index survives a serde roundtrip of its profile: building
    /// from re-parsed JSON answers exactly what building from the
    /// original does (guards against index state that depends on
    /// in-memory-only artifacts like CCT lookup tables).
    #[test]
    fn index_is_stable_across_serde_roundtrip(seed in 0u64..u64::MAX) {
        let profile = gen_profile(seed);
        let back = NumaProfile::from_json(&profile.to_json()).unwrap();
        let a = Engine::new(Arc::new(profile));
        let b = Engine::new(Arc::new(back));
        prop_assert_eq!(a.totals(), b.totals());
        prop_assert_eq!(a.index().var_columns(), b.index().var_columns());
        prop_assert_eq!(
            serde_json::to_string(a.merged_cct()).unwrap(),
            serde_json::to_string(b.merged_cct()).unwrap()
        );
    }
}
