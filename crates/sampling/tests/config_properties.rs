//! Property tests for sampling configurations and rates.

use numa_machine::{AccessLevel, CpuId, DomainId};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_sim::MemoryEvent;
use proptest::prelude::*;

fn ev(latency: u32, is_store: bool) -> MemoryEvent {
    MemoryEvent {
        tid: 0,
        cpu: CpuId(0),
        thread_domain: DomainId(0),
        addr: 0x1000,
        size: 8,
        is_store,
        level: if latency > 100 {
            AccessLevel::MemRemote
        } else {
            AccessLevel::L1
        },
        home_domain: DomainId(1),
        latency,
        line: 0,
        first_touch_page: false,
        clock: 0,
    }
}

proptest! {
    /// Scaling preserves the cost/period ratio (the invariant behind
    /// Table 2's reproduction) for every mechanism and factor.
    #[test]
    fn scaling_preserves_overhead_ratio(
        kind in prop::sample::select(MechanismKind::ALL.to_vec()),
        factor in 1u64..512
    ) {
        let base = MechanismConfig::paper(kind);
        let scaled = MechanismConfig::scaled(kind, factor);
        prop_assert!(scaled.period >= 1);
        prop_assert!(scaled.per_sample_cost >= 1);
        // Ratio preserved to within integer-division slack.
        let r0 = (base.per_sample_cost + base.correction_cost) as f64 / base.period as f64;
        let r1 = (scaled.per_sample_cost + scaled.correction_cost) as f64
            / scaled.period as f64;
        if base.period / factor >= 8 {
            prop_assert!((r0 - r1).abs() / r0 < 0.25, "{kind:?}@{factor}: {r0} vs {r1}");
        }
    }

    /// Long-run sampling rate matches the configured period for every
    /// mechanism fed a uniform eligible stream (the §3 uniformity
    /// requirement).
    #[test]
    fn long_run_rate_matches_period(
        kind in prop::sample::select(MechanismKind::ALL.to_vec()),
        period in 8u64..128
    ) {
        let mut cfg = MechanismConfig::for_tests(kind, period);
        cfg.latency_threshold = 1; // everything eligible for DEAR/PEBS-LL
        let mut m = cfg.build();
        let n = 40_000u64;
        let mut samples = 0u64;
        for _ in 0..n {
            // Loads with latency above any threshold and an L3-missing
            // data source: eligible for every mechanism.
            if m.on_access(&ev(300, false)).sample.is_some() {
                samples += 1;
            }
        }
        let expect = n as f64 / period as f64;
        prop_assert!(
            (samples as f64) > expect * 0.8 && (samples as f64) < expect * 1.2,
            "{kind:?}: {samples} samples, expected ≈{expect}"
        );
    }

    /// Stores never produce samples on load-only mechanisms.
    #[test]
    fn load_only_mechanisms_ignore_stores(period in 1u64..32) {
        for kind in [MechanismKind::Mrk, MechanismKind::Dear, MechanismKind::PebsLl] {
            let cfg = MechanismConfig::for_tests(kind, period);
            let mut m = cfg.build();
            for _ in 0..1000 {
                prop_assert!(m.on_access(&ev(300, true)).sample.is_none(), "{kind:?}");
            }
        }
    }
}
