//! The six mechanism implementations.
//!
//! All mechanisms are built from a [`MechanismConfig`],
//! which carries the sampling period / thresholds (Table 1) and the overhead
//! constants (calibrated so Table 2's overhead column reproduces).

use crate::config::MechanismConfig;
use crate::mechanism::{
    AccessOutcome, Capabilities, ComputeOutcome, MechanismKind, PeriodCounter, SamplingMechanism,
};
use crate::sample::Sample;
use numa_sim::MemoryEvent;

/// Per-sample handler cost including the cache-refill pollution term (see
/// `MechanismConfig::refill_factor`).
fn sample_cost_with_refill(base: u64, refill: f64, ev: &MemoryEvent) -> u64 {
    base + (refill * ev.latency as f64) as u64
}

/// Instruction-based sampling (AMD). Samples every `period`-th instruction
/// of *any* kind: memory samples carry address + latency + data source;
/// non-memory samples still cost handler time (the software filtering the
/// paper notes as IBS overhead) and count toward `I^s`.
pub struct Ibs {
    counter: PeriodCounter,
    caps: Capabilities,
    sample_cost: u64,
    refill: f64,
    /// Cost of fielding a sample that software then filters out (non-memory
    /// instruction) — cheaper than a full memory sample but not free.
    filtered_cost: u64,
}

impl Ibs {
    pub fn new(cfg: &MechanismConfig) -> Self {
        Ibs {
            counter: PeriodCounter::with_jitter(cfg.period, cfg.jitter),
            caps: Capabilities::for_kind(MechanismKind::Ibs),
            sample_cost: cfg.per_sample_cost,
            refill: cfg.refill_factor,
            // Non-memory samples are filtered early in software: cheap.
            filtered_cost: cfg.per_sample_cost / 100,
        }
    }
}

impl SamplingMechanism for Ibs {
    fn kind(&self) -> MechanismKind {
        MechanismKind::Ibs
    }

    fn on_compute(&mut self, n: u64) -> ComputeOutcome {
        let fires = self.counter.add(n);
        ComputeOutcome {
            instruction_samples: fires,
            overhead: fires * self.filtered_cost,
        }
    }

    fn on_access(&mut self, ev: &MemoryEvent) -> AccessOutcome {
        if self.counter.tick() {
            AccessOutcome {
                sample: Some(Sample::from_event(ev, self.caps)),
                overhead: sample_cost_with_refill(self.sample_cost, self.refill, ev),
            }
        } else {
            AccessOutcome::default()
        }
    }
}

/// Marked event sampling (IBM POWER). The hardware marks a small fraction
/// of instructions; a marked instruction matching the configured event
/// (`PM_MRK_FROM_L3MISS`: data sourced from beyond the local L3) produces a
/// sample. Sampling period 1 means every matching marked event samples, yet
/// marking dilution keeps rates low (<100 samples/s/thread on POWER7, per
/// the paper's footnote).
pub struct Mrk {
    dilution: PeriodCounter,
    period: PeriodCounter,
    caps: Capabilities,
    sample_cost: u64,
    refill: f64,
    events: u64,
}

impl Mrk {
    pub fn new(cfg: &MechanismConfig) -> Self {
        Mrk {
            dilution: PeriodCounter::with_jitter(cfg.dilution.max(1), cfg.jitter),
            period: PeriodCounter::with_jitter(cfg.period, cfg.jitter),
            caps: Capabilities::for_kind(MechanismKind::Mrk),
            sample_cost: cfg.per_sample_cost,
            refill: cfg.refill_factor,
            events: 0,
        }
    }
}

impl SamplingMechanism for Mrk {
    fn kind(&self) -> MechanismKind {
        MechanismKind::Mrk
    }

    fn on_compute(&mut self, _n: u64) -> ComputeOutcome {
        ComputeOutcome::default()
    }

    fn on_access(&mut self, ev: &MemoryEvent) -> AccessOutcome {
        // Event filter: loads whose data came from beyond the local L3
        // (PM_MRK_FROM_L3MISS marks demand loads).
        let matches = !ev.is_store
            && matches!(
                ev.level,
                numa_machine::AccessLevel::L3Remote
                    | numa_machine::AccessLevel::MemLocal
                    | numa_machine::AccessLevel::MemRemote
            );
        if !matches {
            return AccessOutcome::default();
        }
        self.events += 1;
        if self.dilution.tick() && self.period.tick() {
            AccessOutcome {
                sample: Some(Sample::from_event(ev, self.caps)),
                overhead: sample_cost_with_refill(self.sample_cost, self.refill, ev),
            }
        } else {
            AccessOutcome::default()
        }
    }

    fn event_count(&self) -> u64 {
        self.events
    }
}

/// Precise event-based sampling (Intel), on `INST_RETIRED:ANY_P`. Samples
/// every `period`-th retired instruction like IBS, but the recorded IP is
/// off by one: the handler runs online binary analysis to recover the
/// previous instruction, which dominates its (high) per-sample cost — the
/// paper measured PEBS as the most expensive hardware mechanism for exactly
/// this reason (§8, footnote 3).
pub struct Pebs {
    counter: PeriodCounter,
    caps: Capabilities,
    sample_cost: u64,
    correction_cost: u64,
    refill: f64,
}

impl Pebs {
    pub fn new(cfg: &MechanismConfig) -> Self {
        Pebs {
            counter: PeriodCounter::with_jitter(cfg.period, cfg.jitter),
            caps: Capabilities::for_kind(MechanismKind::Pebs),
            sample_cost: cfg.per_sample_cost,
            correction_cost: cfg.correction_cost,
            refill: cfg.refill_factor,
        }
    }
}

impl SamplingMechanism for Pebs {
    fn kind(&self) -> MechanismKind {
        MechanismKind::Pebs
    }

    fn on_compute(&mut self, n: u64) -> ComputeOutcome {
        let fires = self.counter.add(n);
        ComputeOutcome {
            instruction_samples: fires,
            overhead: fires * (self.sample_cost + self.correction_cost),
        }
    }

    fn on_access(&mut self, ev: &MemoryEvent) -> AccessOutcome {
        if self.counter.tick() {
            AccessOutcome {
                sample: Some(Sample::from_event(ev, self.caps)),
                overhead: sample_cost_with_refill(
                    self.sample_cost + self.correction_cost,
                    self.refill,
                    ev,
                ),
            }
        } else {
            AccessOutcome::default()
        }
    }
}

/// Data event address registers (Itanium), on `DATA_EAR_CACHE_LAT4`:
/// samples every `period`-th load whose latency is at least the threshold.
/// No NUMA-event (data source) support.
pub struct Dear {
    counter: PeriodCounter,
    caps: Capabilities,
    threshold: u32,
    sample_cost: u64,
    refill: f64,
}

impl Dear {
    pub fn new(cfg: &MechanismConfig) -> Self {
        Dear {
            counter: PeriodCounter::with_jitter(cfg.period, cfg.jitter),
            caps: Capabilities::for_kind(MechanismKind::Dear),
            threshold: cfg.latency_threshold,
            sample_cost: cfg.per_sample_cost,
            refill: cfg.refill_factor,
        }
    }
}

impl SamplingMechanism for Dear {
    fn kind(&self) -> MechanismKind {
        MechanismKind::Dear
    }

    fn on_compute(&mut self, _n: u64) -> ComputeOutcome {
        ComputeOutcome::default()
    }

    fn on_access(&mut self, ev: &MemoryEvent) -> AccessOutcome {
        if ev.is_store || ev.latency < self.threshold {
            return AccessOutcome::default();
        }
        if self.counter.tick() {
            AccessOutcome {
                sample: Some(Sample::from_event(ev, self.caps)),
                overhead: sample_cost_with_refill(self.sample_cost, self.refill, ev),
            }
        } else {
            AccessOutcome::default()
        }
    }
}

/// PEBS with load-latency extension (Intel Nehalem+), on
/// `LATENCY_ABOVE_THRESHOLD`: samples every `period`-th load above the
/// latency threshold, with measured latency and data source.
pub struct PebsLl {
    counter: PeriodCounter,
    caps: Capabilities,
    threshold: u32,
    sample_cost: u64,
    refill: f64,
    events: u64,
}

impl PebsLl {
    pub fn new(cfg: &MechanismConfig) -> Self {
        PebsLl {
            counter: PeriodCounter::with_jitter(cfg.period, cfg.jitter),
            caps: Capabilities::for_kind(MechanismKind::PebsLl),
            threshold: cfg.latency_threshold,
            sample_cost: cfg.per_sample_cost,
            refill: cfg.refill_factor,
            events: 0,
        }
    }
}

impl SamplingMechanism for PebsLl {
    fn kind(&self) -> MechanismKind {
        MechanismKind::PebsLl
    }

    fn on_compute(&mut self, _n: u64) -> ComputeOutcome {
        ComputeOutcome::default()
    }

    fn on_access(&mut self, ev: &MemoryEvent) -> AccessOutcome {
        if ev.is_store || ev.latency < self.threshold {
            return AccessOutcome::default();
        }
        self.events += 1;
        if self.counter.tick() {
            AccessOutcome {
                sample: Some(Sample::from_event(ev, self.caps)),
                overhead: sample_cost_with_refill(self.sample_cost, self.refill, ev),
            }
        } else {
            AccessOutcome::default()
        }
    }

    fn event_count(&self) -> u64 {
        self.events
    }
}

/// Software-supported IBS: LLVM-style instrumentation of every load and
/// store. Every access pays the instrumentation-stub cost; every
/// `period`-th access is recorded as a sample. The only mechanism usable on
/// hardware without PMU address sampling, and by far the most expensive
/// (Table 2: up to +200%).
pub struct SoftIbs {
    counter: PeriodCounter,
    caps: Capabilities,
    stub_cost: u64,
    sample_cost: u64,
    refill: f64,
}

impl SoftIbs {
    pub fn new(cfg: &MechanismConfig) -> Self {
        SoftIbs {
            counter: PeriodCounter::with_jitter(cfg.period, cfg.jitter),
            caps: Capabilities::for_kind(MechanismKind::SoftIbs),
            stub_cost: cfg.per_event_cost,
            sample_cost: cfg.per_sample_cost,
            refill: cfg.refill_factor,
        }
    }
}

impl SamplingMechanism for SoftIbs {
    fn kind(&self) -> MechanismKind {
        MechanismKind::SoftIbs
    }

    fn on_compute(&mut self, _n: u64) -> ComputeOutcome {
        ComputeOutcome::default()
    }

    fn on_access(&mut self, ev: &MemoryEvent) -> AccessOutcome {
        if self.counter.tick() {
            AccessOutcome {
                sample: Some(Sample::from_event(ev, self.caps)),
                overhead: self.stub_cost
                    + sample_cost_with_refill(self.sample_cost, self.refill, ev),
            }
        } else {
            AccessOutcome {
                sample: None,
                overhead: self.stub_cost,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_machine::{AccessLevel, CpuId, DomainId};

    fn ev(level: AccessLevel, latency: u32, is_store: bool) -> MemoryEvent {
        MemoryEvent {
            tid: 0,
            cpu: CpuId(0),
            thread_domain: DomainId(0),
            addr: 0x1000,
            size: 8,
            is_store,
            level,
            home_domain: DomainId(1),
            latency,
            line: 0,
            first_touch_page: false,
            clock: 0,
        }
    }

    fn drive(m: &mut dyn SamplingMechanism, events: &[MemoryEvent]) -> (u64, u64) {
        let mut samples = 0;
        let mut overhead = 0;
        for e in events {
            let o = m.on_access(e);
            samples += o.sample.is_some() as u64;
            overhead += o.overhead;
        }
        (samples, overhead)
    }

    #[test]
    fn ibs_samples_at_period_across_both_streams() {
        let cfg = MechanismConfig::for_tests_exact(MechanismKind::Ibs, 10);
        let mut ibs = Ibs::new(&cfg);
        // 95 compute instructions + 5 accesses = 100 instructions → 10 samples.
        let c = ibs.on_compute(95);
        let events: Vec<_> = (0..5).map(|_| ev(AccessLevel::L1, 4, false)).collect();
        let (mem_samples, _) = drive(&mut ibs, &events);
        assert_eq!(c.instruction_samples + mem_samples, 10);
    }

    #[test]
    fn ibs_memory_samples_carry_latency_and_source() {
        let cfg = MechanismConfig::for_tests(MechanismKind::Ibs, 1);
        let mut ibs = Ibs::new(&cfg);
        let o = ibs.on_access(&ev(AccessLevel::MemRemote, 300, false));
        let s = o.sample.unwrap();
        assert_eq!(s.latency, Some(300));
        assert_eq!(s.level, Some(AccessLevel::MemRemote));
        assert!(s.precise_ip);
    }

    #[test]
    fn mrk_only_samples_l3_miss_traffic() {
        let cfg = MechanismConfig::for_tests(MechanismKind::Mrk, 1);
        let mut mrk = Mrk::new(&cfg);
        assert!(mrk
            .on_access(&ev(AccessLevel::L1, 4, false))
            .sample
            .is_none());
        assert!(mrk
            .on_access(&ev(AccessLevel::L3Local, 40, false))
            .sample
            .is_none());
        let s = mrk.on_access(&ev(AccessLevel::MemRemote, 300, false));
        assert!(s.sample.is_some());
        // MRK has no latency capability (§4.2).
        assert_eq!(s.sample.unwrap().latency, None);
    }

    #[test]
    fn pebs_ip_is_imprecise_and_costly() {
        let mut cfg = MechanismConfig::for_tests(MechanismKind::Pebs, 1);
        cfg.correction_cost = 500;
        cfg.per_sample_cost = 100;
        let mut pebs = Pebs::new(&cfg);
        let o = pebs.on_access(&ev(AccessLevel::L2, 12, true));
        assert_eq!(o.overhead, 600);
        let s = o.sample.unwrap();
        assert!(!s.precise_ip);
        assert_eq!(s.latency, None);
        assert_eq!(s.level, None);
    }

    #[test]
    fn dear_filters_stores_and_fast_loads() {
        let mut cfg = MechanismConfig::for_tests(MechanismKind::Dear, 1);
        cfg.latency_threshold = 8;
        let mut dear = Dear::new(&cfg);
        assert!(dear
            .on_access(&ev(AccessLevel::L1, 4, false))
            .sample
            .is_none());
        assert!(dear
            .on_access(&ev(AccessLevel::MemLocal, 150, true))
            .sample
            .is_none());
        let s = dear.on_access(&ev(AccessLevel::MemLocal, 150, false));
        assert!(s.sample.is_some());
        // No NUMA events on DEAR (§10).
        assert_eq!(s.sample.unwrap().level, None);
    }

    #[test]
    fn pebs_ll_thresholded_with_latency() {
        let mut cfg = MechanismConfig::for_tests(MechanismKind::PebsLl, 1);
        cfg.latency_threshold = 32;
        let mut ll = PebsLl::new(&cfg);
        assert!(ll
            .on_access(&ev(AccessLevel::L2, 12, false))
            .sample
            .is_none());
        let s = ll
            .on_access(&ev(AccessLevel::MemRemote, 400, false))
            .sample
            .unwrap();
        assert_eq!(s.latency, Some(400));
        assert_eq!(s.level, Some(AccessLevel::MemRemote));
    }

    #[test]
    fn soft_ibs_charges_every_access() {
        let mut cfg = MechanismConfig::for_tests_exact(MechanismKind::SoftIbs, 4);
        cfg.per_event_cost = 10;
        cfg.per_sample_cost = 100;
        let mut soft = SoftIbs::new(&cfg);
        let events: Vec<_> = (0..8).map(|_| ev(AccessLevel::L1, 4, false)).collect();
        let (samples, overhead) = drive(&mut soft, &events);
        assert_eq!(samples, 2);
        assert_eq!(overhead, 8 * 10 + 2 * 100);
    }

    #[test]
    fn sampling_rate_is_unbiased_over_long_streams() {
        // §3 requires uniform sampling of memory accesses; a period counter
        // fires exactly count/period times regardless of phase.
        let cfg = MechanismConfig::for_tests_exact(MechanismKind::SoftIbs, 1000);
        let mut soft = SoftIbs::new(&cfg);
        let events: Vec<_> = (0..100_000)
            .map(|_| ev(AccessLevel::L1, 4, false))
            .collect();
        let (samples, _) = drive(&mut soft, &events);
        assert_eq!(samples, 100);
    }
}
