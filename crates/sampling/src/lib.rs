//! Address-sampling mechanisms (paper §3).
//!
//! Address sampling collects (instruction, data address) pairs so memory
//! references can be associated with the data they touch. The paper builds
//! its profiler on six mechanisms — five hardware schemes plus a software
//! fallback — and §10 catalogues how their semantics differ. This crate
//! models each one as a [`SamplingMechanism`] driven by the execution
//! engine's event stream:
//!
//! | Mechanism | Samples | Latency | Data source | Precise IP |
//! |-----------|---------|---------|-------------|------------|
//! | IBS       | all instructions | yes | yes | yes |
//! | MRK       | marked L3-miss events | no | yes | yes |
//! | PEBS      | all retired instructions | no | no | off-by-1, corrected in software |
//! | DEAR      | loads with latency ≥ threshold | no | no (no NUMA events) | yes |
//! | PEBS-LL   | loads with latency ≥ threshold | yes | yes | yes |
//! | Soft-IBS  | every n-th memory access (instrumentation) | no | no | yes |
//!
//! Each mechanism carries an overhead model — cycles charged per delivered
//! sample (signal delivery, unwinding, `move_pages`) and, for Soft-IBS,
//! per instrumented access — which is what reproduces Table 2.

pub mod config;
pub mod mechanism;
pub mod mechanisms;
pub mod sample;

pub use config::{MechanismConfig, Table1Row};
pub use mechanism::{
    AccessOutcome, Capabilities, ComputeOutcome, MechanismKind, SamplingMechanism,
};
pub use sample::Sample;
