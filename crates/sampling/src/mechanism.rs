//! The sampling-mechanism interface.

use crate::sample::Sample;
use numa_sim::MemoryEvent;
use serde::{Deserialize, Serialize};

/// The six mechanisms of §3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MechanismKind {
    /// Instruction-based sampling — AMD Opteron family.
    Ibs,
    /// Marked event sampling — IBM POWER5+.
    Mrk,
    /// Precise event-based sampling — Intel Pentium 4+.
    Pebs,
    /// Data event address registers — Intel Itanium.
    Dear,
    /// PEBS with load-latency extension — Intel Nehalem+.
    PebsLl,
    /// Software instrumentation of every memory access.
    SoftIbs,
}

impl MechanismKind {
    pub const ALL: [MechanismKind; 6] = [
        MechanismKind::Ibs,
        MechanismKind::Mrk,
        MechanismKind::Pebs,
        MechanismKind::Dear,
        MechanismKind::PebsLl,
        MechanismKind::SoftIbs,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MechanismKind::Ibs => "IBS",
            MechanismKind::Mrk => "MRK",
            MechanismKind::Pebs => "PEBS",
            MechanismKind::Dear => "DEAR",
            MechanismKind::PebsLl => "PEBS-LL",
            MechanismKind::SoftIbs => "Soft-IBS",
        }
    }

    /// Full name as printed in Table 1's first column.
    pub fn long_name(self) -> &'static str {
        match self {
            MechanismKind::Ibs => "Instruction-based sampling (IBS)",
            MechanismKind::Mrk => "Marked event sampling (MRK)",
            MechanismKind::Pebs => "Precise event-based sampling (PEBS)",
            MechanismKind::Dear => "Data event address registers (DEAR)",
            MechanismKind::PebsLl => "PEBS with load latency (PEBS-LL)",
            MechanismKind::SoftIbs => "Software-supported IBS (Soft-IBS)",
        }
    }
}

/// What a mechanism's hardware can capture (§3's three capabilities plus
/// the §10 comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    /// IBS/PEBS sample the whole instruction stream (useful: the
    /// memory-instruction fraction and `I^s` come for free); event-based
    /// mechanisms see only their trigger events.
    pub samples_all_instructions: bool,
    /// Measures access latency (IBS, PEBS-LL) — enables `lpi_NUMA` (§4.2).
    pub latency: bool,
    /// Reports the data source / NUMA events (not DEAR).
    pub data_source: bool,
    /// Captures the exact IP of the sampled instruction (PEBS is off by
    /// one).
    pub precise_ip: bool,
}

impl Capabilities {
    pub fn for_kind(kind: MechanismKind) -> Self {
        match kind {
            MechanismKind::Ibs => Capabilities {
                samples_all_instructions: true,
                latency: true,
                data_source: true,
                precise_ip: true,
            },
            MechanismKind::Mrk => Capabilities {
                samples_all_instructions: false,
                latency: false,
                data_source: true,
                precise_ip: true,
            },
            MechanismKind::Pebs => Capabilities {
                samples_all_instructions: true,
                latency: false,
                data_source: false,
                precise_ip: false,
            },
            MechanismKind::Dear => Capabilities {
                samples_all_instructions: false,
                latency: false,
                data_source: false,
                precise_ip: true,
            },
            MechanismKind::PebsLl => Capabilities {
                samples_all_instructions: false,
                latency: true,
                data_source: true,
                precise_ip: true,
            },
            MechanismKind::SoftIbs => Capabilities {
                samples_all_instructions: false,
                latency: false,
                data_source: false,
                precise_ip: true,
            },
        }
    }
}

/// Result of feeding a block of non-memory instructions to a mechanism.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComputeOutcome {
    /// Samples that fired on non-memory instructions (they carry no
    /// address but count into the sampled-instruction total `I^s`).
    pub instruction_samples: u64,
    /// Monitoring cycles to charge.
    pub overhead: u64,
}

/// Result of feeding one memory access to a mechanism.
#[derive(Clone, Copy, Debug, Default)]
pub struct AccessOutcome {
    /// The sample, if this access was selected.
    pub sample: Option<Sample>,
    /// Monitoring cycles to charge (per-sample costs, and for Soft-IBS the
    /// per-access instrumentation cost).
    pub overhead: u64,
}

/// A per-thread sampling engine. Mechanisms are stateful (period counters)
/// and owned one-per-thread, mirroring per-CPU PMU state; they therefore
/// need `Send` but not `Sync`.
pub trait SamplingMechanism: Send {
    fn kind(&self) -> MechanismKind;

    fn capabilities(&self) -> Capabilities {
        Capabilities::for_kind(self.kind())
    }

    /// Observe `n` non-memory instructions retiring.
    fn on_compute(&mut self, n: u64) -> ComputeOutcome;

    /// Observe one memory access (which also retires one instruction).
    fn on_access(&mut self, ev: &MemoryEvent) -> AccessOutcome;

    /// Value of the mechanism's hardware event counter: the *absolute*
    /// number of eligible events observed (sampled or not), as a PMU
    /// counter would report. PEBS-LL's `E_NUMA` in Eq. 3 comes from here.
    /// Mechanisms without a meaningful event counter return 0.
    fn event_count(&self) -> u64 {
        0
    }
}

/// Period counter shared by all mechanisms: fires roughly once per
/// `period` ticks.
///
/// With jitter enabled (the default for real configurations), each arming
/// interval is drawn uniformly from `[3/4·period, 5/4·period]` using a
/// deterministic per-counter PRNG — mirroring how IBS/PEBS randomize their
/// counters. §3 requires that "memory accesses are uniformly sampled":
/// a strictly periodic counter aliases with periodic access patterns (e.g.
/// a loop alternating two arrays under an even period samples only one of
/// them), which jitter prevents.
#[derive(Clone, Debug)]
pub(crate) struct PeriodCounter {
    period: u64,
    count: u64,
    next_arm: u64,
    rng: u64,
    jitter: bool,
}

/// Per-process uniquifier so each counter (one per thread) jitters
/// differently.
static COUNTER_SEED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0x9e37);

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl PeriodCounter {
    /// Jittered counter (production behaviour).
    #[cfg(test)]
    pub fn new(period: u64) -> Self {
        Self::with_jitter(period, true)
    }

    pub fn with_jitter(period: u64, jitter: bool) -> Self {
        assert!(period >= 1, "sampling period must be positive");
        let seed = COUNTER_SEED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut c = PeriodCounter {
            period,
            count: 0,
            next_arm: period,
            rng: splitmix(seed),
            jitter,
        };
        c.rearm();
        c
    }

    fn rearm(&mut self) {
        // Periods below 4 cannot meaningfully jitter.
        if !self.jitter || self.period < 4 {
            self.next_arm = self.period;
            return;
        }
        self.rng = splitmix(self.rng);
        let spread = self.period / 2; // ± period/4
        self.next_arm = self.period - spread / 2 + self.rng % (spread + 1);
    }

    /// Advance by `n` ticks; returns how many times the counter fired.
    pub fn add(&mut self, n: u64) -> u64 {
        self.count += n;
        let mut fires = 0;
        while self.count >= self.next_arm {
            self.count -= self.next_arm;
            self.rearm();
            fires += 1;
        }
        fires
    }

    /// Advance by one tick; true if the counter fired.
    pub fn tick(&mut self) -> bool {
        self.add(1) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unjittered_counter_fires_at_exact_rate() {
        let mut c = PeriodCounter::with_jitter(10, false);
        let mut fires = 0;
        for _ in 0..100 {
            if c.tick() {
                fires += 1;
            }
        }
        assert_eq!(fires, 10);
    }

    #[test]
    fn jittered_counter_fires_at_the_right_average_rate() {
        let mut c = PeriodCounter::new(100);
        let fires = c.add(1_000_000);
        let expectation = 1_000_000 / 100;
        assert!(
            (fires as i64 - expectation as i64).unsigned_abs() < expectation / 10,
            "fires {fires} vs ~{expectation}"
        );
    }

    #[test]
    fn jittered_counter_breaks_phase_alignment() {
        // Two counters with the same period must not fire in lockstep —
        // that lockstep is exactly what biases sampling of periodic access
        // streams (§3's uniformity requirement).
        let mut a = PeriodCounter::new(64);
        let mut b = PeriodCounter::new(64);
        let mut same = 0;
        let mut total = 0;
        for _ in 0..100_000 {
            let fa = a.tick();
            let fb = b.tick();
            if fa || fb {
                total += 1;
                if fa == fb {
                    same += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            (same as f64) < 0.5 * total as f64,
            "counters fired together {same}/{total}"
        );
    }

    #[test]
    fn period_counter_bulk_add_matches_ticks() {
        let mut a = PeriodCounter::with_jitter(7, false);
        let mut b = PeriodCounter::with_jitter(7, false);
        let mut fa = 0;
        for _ in 0..1000 {
            if a.tick() {
                fa += 1;
            }
        }
        let fb = b.add(1000);
        assert_eq!(fa, fb);
    }

    #[test]
    fn capabilities_match_paper_table() {
        use MechanismKind::*;
        // §4.2: only IBS and PEBS-LL measure latency.
        for k in MechanismKind::ALL {
            let c = Capabilities::for_kind(k);
            assert_eq!(c.latency, matches!(k, Ibs | PebsLl), "{k:?}");
        }
        // §10: DEAR does not support NUMA events.
        assert!(!Capabilities::for_kind(Dear).data_source);
        // §8: PEBS needs off-by-1 correction.
        assert!(!Capabilities::for_kind(Pebs).precise_ip);
        // §10: IBS and PEBS sample all instruction kinds.
        assert!(Capabilities::for_kind(Ibs).samples_all_instructions);
        assert!(Capabilities::for_kind(Pebs).samples_all_instructions);
        assert!(!Capabilities::for_kind(Mrk).samples_all_instructions);
    }
}
