//! The sample record delivered to the profiler.

use numa_machine::{AccessLevel, CpuId, DomainId};
use numa_sim::MemoryEvent;
use serde::{Deserialize, Serialize};

/// One address sample, with optional fields gated by the capturing
/// mechanism's [`Capabilities`](crate::mechanism::Capabilities). Fields that
/// a mechanism's hardware cannot capture are `None`, and the profiler's
/// derived metrics degrade exactly as the paper describes (e.g. without
/// latency, `lpi_NUMA` is unavailable and the tool falls back to
/// `M_l`/`M_r` analysis as in the MRK case studies).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    pub tid: usize,
    /// CPU that took the sample. PMU-based mechanisms report it directly;
    /// Soft-IBS relies on the static thread→core binding (§4.1).
    pub cpu: CpuId,
    pub thread_domain: DomainId,
    /// Effective address, present iff the sampled instruction was a memory
    /// operation (IBS/PEBS also sample non-memory instructions, recorded
    /// separately via [`ComputeOutcome`](crate::mechanism::ComputeOutcome)).
    pub addr: Option<u64>,
    /// Access width in bytes (present with `addr`).
    pub size: Option<u32>,
    pub is_store: Option<bool>,
    /// Measured access latency — IBS and PEBS-LL only (§4.2).
    pub latency: Option<u32>,
    /// Data source (which level/domain satisfied the access) — mechanisms
    /// with NUMA-event support.
    pub level: Option<AccessLevel>,
    /// Source-line marker active at the sample.
    pub line: u32,
    /// False for PEBS, whose captured IP is off by one instruction; the
    /// profiler's code-centric attribution is still correct because the
    /// mechanism performs (costly) online binary analysis, but downstream
    /// consumers can see the flag.
    pub precise_ip: bool,
}

impl Sample {
    /// Build a sample from an engine event, masking fields the mechanism
    /// cannot capture.
    pub fn from_event(ev: &MemoryEvent, caps: crate::mechanism::Capabilities) -> Self {
        Sample {
            tid: ev.tid,
            cpu: ev.cpu,
            thread_domain: ev.thread_domain,
            addr: Some(ev.addr),
            size: Some(ev.size),
            is_store: Some(ev.is_store),
            latency: caps.latency.then_some(ev.latency),
            level: caps.data_source.then_some(ev.level),
            line: ev.line,
            precise_ip: caps.precise_ip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::Capabilities;

    fn ev() -> MemoryEvent {
        MemoryEvent {
            tid: 3,
            cpu: CpuId(7),
            thread_domain: DomainId(1),
            addr: 0xabc0,
            size: 8,
            is_store: true,
            level: AccessLevel::MemRemote,
            home_domain: DomainId(0),
            latency: 310,
            line: 42,
            first_touch_page: false,
            clock: 0,
        }
    }

    #[test]
    fn capability_masking() {
        let full = Capabilities {
            samples_all_instructions: true,
            latency: true,
            data_source: true,
            precise_ip: true,
        };
        let s = Sample::from_event(&ev(), full);
        assert_eq!(s.addr, Some(0xabc0));
        assert_eq!(s.latency, Some(310));
        assert_eq!(s.level, Some(AccessLevel::MemRemote));

        let poor = Capabilities {
            samples_all_instructions: false,
            latency: false,
            data_source: false,
            precise_ip: false,
        };
        let s = Sample::from_event(&ev(), poor);
        assert_eq!(
            s.addr,
            Some(0xabc0),
            "address is what address sampling is for"
        );
        assert_eq!(s.latency, None);
        assert_eq!(s.level, None);
        assert!(!s.precise_ip);
    }
}
