//! Mechanism configurations: Table 1 of the paper, plus overhead constants
//! and scaling for simulator-sized inputs.

use crate::mechanism::{MechanismKind, SamplingMechanism};
use crate::mechanisms::{Dear, Ibs, Mrk, Pebs, PebsLl, SoftIbs};
use numa_machine::MachinePreset;
use serde::{Deserialize, Serialize};

/// Full configuration of one sampling mechanism.
///
/// `period`, `dilution`, and `latency_threshold` define *what* is sampled;
/// the `*_cost` fields define the overhead model (cycles charged to the
/// monitored thread), calibrated so the Table 2 regeneration lands near the
/// paper's percentages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MechanismConfig {
    pub kind: MechanismKind,
    /// Sampling period, counted in the mechanism's native unit:
    /// instructions for IBS/PEBS, eligible events for MRK/DEAR/PEBS-LL,
    /// memory accesses for Soft-IBS.
    pub period: u64,
    /// MRK only: hardware marks one in `dilution` eligible instructions.
    pub dilution: u64,
    /// DEAR / PEBS-LL: minimum load latency (cycles) to be eligible.
    pub latency_threshold: u32,
    /// Cycles per delivered sample (signal delivery, unwind, `move_pages`,
    /// CCT update).
    pub per_sample_cost: u64,
    /// Cycles per observed event regardless of sampling (Soft-IBS's
    /// instrumentation stub).
    pub per_event_cost: u64,
    /// PEBS only: online binary analysis to correct the off-by-1 IP.
    pub correction_cost: u64,
    /// Cache-pollution model: each sample handler evicts application cache
    /// state, and the app pays to refill it afterwards. The refill cost is
    /// proportional to the sampled access's latency — a proxy for how
    /// memory-bound the interrupted code is — which is why the paper's
    /// overheads are highest on the memory-intensive codes (AMG, LULESH)
    /// and low on compute-bound Blackscholes.
    pub refill_factor: f64,
    /// Randomize sampling intervals (±25%) like real PMUs, guaranteeing
    /// the uniform sampling §3 requires. Disable only for tests that need
    /// exact sample counts.
    pub jitter: bool,
}

impl MechanismConfig {
    /// The paper's configuration (Table 1): event and period per mechanism.
    ///
    /// Overhead constants are our calibration; periods are the paper's.
    pub fn paper(kind: MechanismKind) -> Self {
        match kind {
            MechanismKind::Ibs => MechanismConfig {
                kind,
                period: 64 * 1024,
                dilution: 1,
                latency_threshold: 0,
                per_sample_cost: 90_000,
                per_event_cost: 0,
                correction_cost: 0,
                refill_factor: 96.0,
                jitter: true,
            },
            MechanismKind::Mrk => MechanismConfig {
                kind,
                period: 1,
                dilution: 512,
                latency_threshold: 0,
                per_sample_cost: 14_000,
                per_event_cost: 0,
                correction_cost: 0,
                refill_factor: 96.0,
                jitter: true,
            },
            MechanismKind::Pebs => MechanismConfig {
                kind,
                period: 1_000_000,
                dilution: 1,
                latency_threshold: 0,
                per_sample_cost: 15_000,
                per_event_cost: 0,
                correction_cost: 420_000,
                refill_factor: 12_600.0,
                jitter: true,
            },
            MechanismKind::Dear => MechanismConfig {
                kind,
                period: 20_000,
                dilution: 1,
                latency_threshold: 8, // DATA_EAR_CACHE_LAT4-style: beyond L1
                per_sample_cost: 400_000,
                per_event_cost: 0,
                correction_cost: 0,
                refill_factor: 64.0,
                jitter: true,
            },
            MechanismKind::PebsLl => MechanismConfig {
                kind,
                period: 500_000,
                dilution: 1,
                latency_threshold: 32, // LATENCY_ABOVE_THRESHOLD
                per_sample_cost: 9_000_000,
                per_event_cost: 0,
                correction_cost: 0,
                refill_factor: 64.0,
                jitter: true,
            },
            MechanismKind::SoftIbs => MechanismConfig {
                kind,
                period: 10_000_000,
                dilution: 1,
                latency_threshold: 0,
                per_sample_cost: 10_000,
                per_event_cost: 12,
                correction_cost: 0,
                refill_factor: 32.0,
                jitter: true,
            },
        }
    }

    /// Scale the paper's configuration for simulator-sized inputs: the
    /// paper's periods target hours-long native runs; dividing period and
    /// per-sample cost by the same `factor` preserves the overhead
    /// *fraction* while yielding enough samples from a short simulated run.
    pub fn scaled(kind: MechanismKind, factor: u64) -> Self {
        assert!(factor >= 1);
        let mut cfg = Self::paper(kind);
        cfg.period = (cfg.period / factor).max(1);
        cfg.per_sample_cost = (cfg.per_sample_cost / factor).max(1);
        cfg.correction_cost /= factor;
        cfg.refill_factor /= factor as f64;
        cfg.dilution = (cfg.dilution / factor.min(cfg.dilution)).max(1);
        cfg
    }

    /// A test configuration with an explicit period and zeroed costs.
    /// Jitter stays on so access-pattern tests sample uniformly.
    pub fn for_tests(kind: MechanismKind, period: u64) -> Self {
        MechanismConfig {
            kind,
            period,
            dilution: 1,
            latency_threshold: 0,
            per_sample_cost: 0,
            per_event_cost: 0,
            correction_cost: 0,
            refill_factor: 0.0,
            jitter: true,
        }
    }

    /// Like [`Self::for_tests`] but strictly periodic, for tests that
    /// assert exact sample counts.
    pub fn for_tests_exact(kind: MechanismKind, period: u64) -> Self {
        let mut cfg = Self::for_tests(kind, period);
        cfg.jitter = false;
        cfg
    }

    /// Instantiate a per-thread sampling engine.
    pub fn build(&self) -> Box<dyn SamplingMechanism> {
        match self.kind {
            MechanismKind::Ibs => Box::new(Ibs::new(self)),
            MechanismKind::Mrk => Box::new(Mrk::new(self)),
            MechanismKind::Pebs => Box::new(Pebs::new(self)),
            MechanismKind::Dear => Box::new(Dear::new(self)),
            MechanismKind::PebsLl => Box::new(PebsLl::new(self)),
            MechanismKind::SoftIbs => Box::new(SoftIbs::new(self)),
        }
    }

    /// Event name as printed in Table 1.
    pub fn event_name(&self) -> &'static str {
        match self.kind {
            MechanismKind::Ibs => "IBS op",
            MechanismKind::Mrk => "PM_MRK_FROM_L3MISS",
            MechanismKind::Pebs => "INST_RETIRED:ANY_P",
            MechanismKind::Dear => "DATA_EAR_CACHE_LAT4",
            MechanismKind::PebsLl => "LATENCY_ABOVE_THRESHOLD",
            MechanismKind::SoftIbs => "memory accesses",
        }
    }

    /// Period as printed in Table 1.
    pub fn period_label(&self) -> String {
        match self.kind {
            MechanismKind::Ibs => "64K instructions".to_string(),
            _ => format!("{}", self.period),
        }
    }
}

/// One row of Table 1: a mechanism paired with the machine the paper
/// evaluated it on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Row {
    pub mechanism: MechanismKind,
    pub preset: MachinePreset,
    pub threads: usize,
    pub event: String,
    pub period: String,
}

impl Table1Row {
    /// The six rows of Table 1. Soft-IBS works on every platform; the
    /// paper tests it on the AMD machine.
    pub fn table1() -> Vec<Table1Row> {
        let rows = [
            (MechanismKind::Ibs, MachinePreset::AmdMagnyCours),
            (MechanismKind::Mrk, MachinePreset::IbmPower7),
            (MechanismKind::Pebs, MachinePreset::IntelHarpertown),
            (MechanismKind::Dear, MachinePreset::IntelItanium2),
            (MechanismKind::PebsLl, MachinePreset::IntelIvyBridge),
            (MechanismKind::SoftIbs, MachinePreset::AmdMagnyCours),
        ];
        rows.into_iter()
            .map(|(mechanism, preset)| {
                let cfg = MechanismConfig::paper(mechanism);
                Table1Row {
                    mechanism,
                    preset,
                    threads: preset.table1_threads(),
                    event: cfg.event_name().to_string(),
                    period: cfg.period_label(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_periods_match_table1() {
        assert_eq!(MechanismConfig::paper(MechanismKind::Ibs).period, 65536);
        assert_eq!(MechanismConfig::paper(MechanismKind::Mrk).period, 1);
        assert_eq!(
            MechanismConfig::paper(MechanismKind::Pebs).period,
            1_000_000
        );
        assert_eq!(MechanismConfig::paper(MechanismKind::Dear).period, 20_000);
        assert_eq!(
            MechanismConfig::paper(MechanismKind::PebsLl).period,
            500_000
        );
        assert_eq!(
            MechanismConfig::paper(MechanismKind::SoftIbs).period,
            10_000_000
        );
    }

    #[test]
    fn scaling_preserves_overhead_ratio() {
        let base = MechanismConfig::paper(MechanismKind::Ibs);
        let scaled = MechanismConfig::scaled(MechanismKind::Ibs, 64);
        let r0 = base.per_sample_cost as f64 / base.period as f64;
        let r1 = scaled.per_sample_cost as f64 / scaled.period as f64;
        assert!((r0 - r1).abs() / r0 < 0.05, "{r0} vs {r1}");
    }

    #[test]
    fn scaled_period_never_zero() {
        let cfg = MechanismConfig::scaled(MechanismKind::Mrk, 1 << 30);
        assert!(cfg.period >= 1);
        assert!(cfg.dilution >= 1);
    }

    #[test]
    fn build_constructs_matching_kind() {
        for kind in MechanismKind::ALL {
            let m = MechanismConfig::scaled(kind, 64).build();
            assert_eq!(m.kind(), kind);
        }
    }

    #[test]
    fn table1_has_six_rows_with_paper_thread_counts() {
        let t = Table1Row::table1();
        assert_eq!(t.len(), 6);
        let threads: Vec<usize> = t.iter().map(|r| r.threads).collect();
        assert_eq!(threads, vec![48, 128, 8, 8, 8, 48]);
    }
}
