//! End-to-end observability tests: the `metrics` wire op and the
//! embedded `GET /metrics` responder must expose exactly the counters
//! `server-stats` reports (one storage location, two readers), scrapes
//! racing ingest must never see torn histogram snapshots, slow-op
//! tracing must survive concurrent writers, and the live-session
//! gauges must track aborts and lease reaps exactly.

use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_server::{Client, LiveConfig, Server, ServerConfig};
use numa_sim::{ExecMode, Program};
use numa_store::ProfileStore;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small deterministic profile; `rounds` varies the content hash.
fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 8));
    let mut p = Program::new(machine, 8, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 20;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 8;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

fn spawn_server(config: ServerConfig, store: Arc<ProfileStore>) -> (Server, SocketAddr) {
    let server = Server::bind("127.0.0.1:0", config, store).expect("bind ephemeral");
    let addr = server.local_addr();
    (server, addr)
}

fn run_server(
    server: Server,
) -> std::thread::JoinHandle<std::io::Result<numa_server::ServerStatsReport>> {
    std::thread::spawn(move || server.run())
}

/// Minimal Prometheus text parser: `name{labels} value` lines keyed by
/// the full series name (labels included), comments skipped.
fn parse_metrics(text: &str) -> HashMap<String, i128> {
    let mut out = HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (key, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("metric line without a value: {line:?}");
        });
        let value: i128 = value
            .parse()
            .unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
        assert!(
            out.insert(key.to_string(), value).is_none(),
            "duplicate series {key:?}"
        );
    }
    out
}

fn series(scrape: &HashMap<String, i128>, key: &str) -> i128 {
    *scrape
        .get(key)
        .unwrap_or_else(|| panic!("series {key:?} missing from scrape"))
}

#[test]
fn scrape_matches_server_stats_after_a_mixed_workload() {
    let (server, addr) = spawn_server(ServerConfig::default(), Arc::new(ProfileStore::new()));
    let server = run_server(server);
    let mut c = Client::connect(addr).expect("connect");

    // Deterministic mixed workload. Per-connection requests are served
    // sequentially by one worker, so request N is counted before
    // request N+1 is read — the fixture below is exact, not racy.
    c.ping().expect("ping");
    let p1 = profile(1).to_json();
    c.ingest("one", &p1).expect("ingest one");
    let (_, added) = c.ingest("one-again", &p1).expect("re-ingest");
    assert!(!added, "identical content must dedup");
    c.ingest("two", &profile(2).to_json()).expect("ingest two");
    assert!(c.ingest("junk", "not json").is_err(), "parse must fail");
    c.aggregate().expect("aggregate (cache miss)");
    c.aggregate().expect("aggregate (cache hit)");
    c.top(3).expect("top");
    c.list().expect("list");
    let report = c.server_stats().expect("server stats");
    let scrape = parse_metrics(&c.metrics().expect("metrics op"));

    // The pre-migration fixture: every counter the workload touched,
    // by value. A migration that forked the storage (hot path counts
    // one atomic, the scrape reads another) breaks these.
    let expected: &[(&str, i128)] = &[
        ("numa_server_requests_total{op=\"ping\"}", 1),
        ("numa_server_requests_total{op=\"ingest\"}", 4),
        ("numa_server_requests_total{op=\"aggregate\"}", 2),
        ("numa_server_requests_total{op=\"top\"}", 1),
        ("numa_server_requests_total{op=\"list\"}", 1),
        ("numa_server_requests_total{op=\"server-stats\"}", 1),
        // The scrape is rendered before its own request is recorded.
        ("numa_server_requests_total{op=\"metrics\"}", 0),
        ("numa_server_errors_total{op=\"ingest\"}", 1),
        ("numa_server_errors_total{op=\"aggregate\"}", 0),
        ("numa_server_connections_accepted_total", 1),
        ("numa_store_cache_hits_total", 1),
        ("numa_store_cache_misses_total", 2),
        ("numa_store_cache_insertions_total", 2),
        ("numa_store_cache_evictions_total", 0),
        ("numa_store_dedup_hits_total", 1),
        ("numa_store_parse_failures_total", 1),
        ("numa_store_profiles", 2),
        ("numa_store_wal_appends_total", 0),
        ("numa_live_open_sessions", 0),
        ("numa_live_open_bytes", 0),
        ("numa_live_sessions_opened_total", 0),
    ];
    for (key, want) in expected {
        assert_eq!(series(&scrape, key), *want, "series {key}");
    }

    // Counter parity: every migrated counter in the `server-stats`
    // report equals its scraped series — same storage, two surfaces.
    // (`server-stats` renders its report before recording its own
    // request, so its op count is one behind the later scrape.)
    let parity: &[(&str, u64)] = &[
        ("numa_store_cache_hits_total", report.cache_hits),
        ("numa_store_cache_misses_total", report.cache_misses),
        ("numa_store_cache_insertions_total", report.cache_insertions),
        ("numa_store_cache_evictions_total", report.cache_evictions),
        ("numa_store_dedup_hits_total", 1),
        ("numa_store_wal_appends_total", report.wal_appends),
        (
            "numa_store_wal_group_commits_total",
            report.wal_group_commits,
        ),
        (
            "numa_store_snapshots_written_total",
            report.snapshots_written,
        ),
        (
            "numa_store_persist_io_errors_total",
            report.persist_io_errors,
        ),
        ("numa_live_open_sessions", report.live_sessions),
        ("numa_live_open_bytes", report.live_open_bytes),
        (
            "numa_live_sessions_opened_total",
            report.live_sessions_opened,
        ),
        (
            "numa_live_sessions_sealed_total",
            report.live_sessions_sealed,
        ),
        (
            "numa_live_sessions_aborted_total",
            report.live_sessions_aborted,
        ),
        ("numa_live_sessions_reaped_total", report.live_leases_reaped),
        (
            "numa_live_chunks_appended_total",
            report.live_chunks_appended,
        ),
        (
            "numa_live_backpressure_rejections_total",
            report.live_backpressure,
        ),
        (
            "numa_server_connections_accepted_total",
            report.connections_accepted,
        ),
        (
            "numa_server_rejected_oversized_total",
            report.rejected_oversized,
        ),
        (
            "numa_server_malformed_frames_total",
            report.malformed_frames,
        ),
        ("numa_server_timeouts_total", report.timeouts),
    ];
    for (key, want) in parity {
        assert_eq!(series(&scrape, key), *want as i128, "parity for {key}");
    }
    for op in &report.per_op {
        let adjust = if op.op == "server-stats" { 1 } else { 0 };
        assert_eq!(
            series(
                &scrape,
                &format!("numa_server_requests_total{{op=\"{}\"}}", op.op)
            ),
            (op.requests + adjust) as i128,
            "per-op parity for {}",
            op.op
        );
        assert_eq!(
            series(
                &scrape,
                &format!("numa_server_errors_total{{op=\"{}\"}}", op.op)
            ),
            op.errors as i128,
            "per-op error parity for {}",
            op.op
        );
    }
    for row in &report.store_shards {
        assert_eq!(
            series(
                &scrape,
                &format!("numa_store_shard_ingests_total{{shard=\"{}\"}}", row.shard)
            ),
            row.ingests as i128,
            "shard {} ingest parity",
            row.shard
        );
    }
    // The request-latency histogram rides along with a consistent
    // count: le="+Inf" equals _count by construction.
    assert_eq!(
        series(
            &scrape,
            "numa_server_request_latency_us_bucket{le=\"+Inf\"}"
        ),
        series(&scrape, "numa_server_request_latency_us_count"),
    );

    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn durable_counters_appear_in_the_scrape() {
    let dir = std::env::temp_dir().join(format!("numa-metrics-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ProfileStore::open_durable(&dir, 64, Default::default()).expect("open durable");
    let (server, addr) = spawn_server(ServerConfig::default(), Arc::new(store));
    let server = run_server(server);
    let mut c = Client::connect(addr).expect("connect");

    c.ingest("a", &profile(1).to_json()).expect("ingest a");
    c.ingest("b", &profile(2).to_json()).expect("ingest b");
    let report = c.server_stats().expect("stats");
    let scrape = parse_metrics(&c.metrics().expect("metrics"));

    assert!(report.durable);
    assert_eq!(report.wal_appends, 2);
    assert_eq!(
        series(&scrape, "numa_store_wal_appends_total"),
        report.wal_appends as i128
    );
    assert_eq!(
        series(&scrape, "numa_store_wal_group_commits_total"),
        report.wal_group_commits as i128
    );
    assert!(report.wal_group_commits >= 1);
    assert!(series(&scrape, "numa_store_wal_bytes") > 0);

    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn http_responder_serves_the_registry() {
    let (server, addr) = spawn_server(
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        },
        Arc::new(ProfileStore::new()),
    );
    let metrics_addr = server.metrics_addr().expect("metrics listener bound");
    let server = run_server(server);
    let mut c = Client::connect(addr).expect("connect");
    c.ingest("one", &profile(1).to_json()).expect("ingest");

    let get = |path: &str, method: &str| -> String {
        let mut s = TcpStream::connect(metrics_addr).expect("connect scraper");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).expect("read response");
        body
    };

    let ok = get("/metrics", "GET");
    assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
    assert!(
        ok.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{ok}"
    );
    // The body is the same registry the wire op renders: parse it and
    // check a store counter the ingest above moved.
    let body = ok.split("\r\n\r\n").nth(1).expect("has a body");
    let scrape = parse_metrics(body);
    assert_eq!(series(&scrape, "numa_store_profiles"), 1);
    assert!(scrape.contains_key("numa_server_uptime_seconds"));

    assert!(get("/other", "GET").starts_with("HTTP/1.1 404 "));
    assert!(get("/metrics", "POST").starts_with("HTTP/1.1 405 "));

    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn scrapes_racing_ingest_never_see_torn_latency_snapshots() {
    let (server, addr) = spawn_server(ServerConfig::default(), Arc::new(ProfileStore::new()));
    let server = run_server(server);

    // Four writers hammer the daemon with mixed ops while the main
    // thread scrapes continuously. Every snapshot must be internally
    // consistent: ordered percentiles and count == bucket sum.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("writer connect");
                let json = profile(w + 1).to_json();
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    c.ingest(&format!("w{w}-{i}"), &json).expect("ingest");
                    c.aggregate().expect("aggregate");
                    c.ping().expect("ping");
                    i += 1;
                }
            })
        })
        .collect();

    let mut c = Client::connect(addr).expect("observer connect");
    for _ in 0..50 {
        let stats = c.server_stats().expect("stats");
        assert!(stats.latency.p50_us <= stats.latency.p95_us);
        assert!(stats.latency.p95_us <= stats.latency.p99_us);
        assert!(stats.latency.p99_us <= stats.latency.max_us);
        let scrape = parse_metrics(&c.metrics().expect("metrics"));
        assert_eq!(
            series(
                &scrape,
                "numa_server_request_latency_us_bucket{le=\"+Inf\"}"
            ),
            series(&scrape, "numa_server_request_latency_us_count"),
            "scrape saw a torn histogram"
        );
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        w.join().expect("writer");
    }

    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn slow_op_trace_survives_eight_concurrent_writers() {
    // Threshold zero: every request is a slow op, so eight connections
    // hammering the daemon exercise the trace ring and the slow-op
    // retention under real contention.
    let (server, addr) = spawn_server(
        ServerConfig {
            slow_op_threshold: Duration::ZERO,
            ..ServerConfig::default()
        },
        Arc::new(ProfileStore::new()),
    );
    let server = run_server(server);

    let writers: Vec<_> = (0..8)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("writer connect");
                for i in 0..25 {
                    if i % 5 == 0 {
                        c.ingest(&format!("w{w}-{i}"), &profile(w + 1).to_json())
                            .expect("ingest");
                    } else {
                        c.ping().expect("ping");
                    }
                }
            })
        })
        .collect();
    // Scrape while the writers are live: rows must never be torn.
    let mut observer = Client::connect(addr).expect("observer");
    for _ in 0..10 {
        let stats = observer.server_stats().expect("stats");
        assert!(stats.recent_slow_ops.len() <= 16);
        for pair in stats.recent_slow_ops.windows(2) {
            assert!(
                pair[0].seq < pair[1].seq,
                "slow-op seqs must be strictly increasing: {:?}",
                stats.recent_slow_ops
            );
        }
        for row in &stats.recent_slow_ops {
            assert!(!row.op.is_empty(), "torn row: {row:?}");
        }
    }
    for w in writers {
        w.join().expect("writer");
    }

    let stats = observer.server_stats().expect("final stats");
    assert!(
        !stats.recent_slow_ops.is_empty(),
        "threshold zero must retain slow ops"
    );
    assert!(stats.recent_slow_ops.len() <= 16);
    let rendered = stats.render();
    assert!(rendered.contains("recent slow ops:"), "{rendered}");

    observer.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn trace_capacity_zero_disables_span_capture() {
    let (server, addr) = spawn_server(
        ServerConfig {
            trace_capacity: 0,
            slow_op_threshold: Duration::ZERO,
            ..ServerConfig::default()
        },
        Arc::new(ProfileStore::new()),
    );
    let server = run_server(server);
    let mut c = Client::connect(addr).expect("connect");
    c.ping().expect("ping");
    c.ingest("one", &profile(1).to_json()).expect("ingest");
    let stats = c.server_stats().expect("stats");
    assert!(
        stats.recent_slow_ops.is_empty(),
        "capacity 0 must capture nothing: {:?}",
        stats.recent_slow_ops
    );
    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn abort_decrements_the_session_gauges_exactly() {
    let (server, addr) = spawn_server(ServerConfig::default(), Arc::new(ProfileStore::new()));
    let server = run_server(server);
    let mut c = Client::connect(addr).expect("connect");

    let chunks = numa_store::stream::split_profile(&profile(1), 2);
    let keep = c.open_session("keep").expect("open keep");
    let doomed = c.open_session("doomed").expect("open doomed");
    let keep_chunk = chunks[0].to_json();
    let doomed_chunks = [chunks[0].to_json(), chunks[1].to_json()];
    c.append_chunk(keep.session, 0, &keep_chunk)
        .expect("keep 0");
    c.append_chunk(doomed.session, 0, &doomed_chunks[0])
        .expect("doomed 0");
    c.append_chunk(doomed.session, 1, &doomed_chunks[1])
        .expect("doomed 1");
    let doomed_bytes = (doomed_chunks[0].len() + doomed_chunks[1].len()) as i128;

    let before = parse_metrics(&c.metrics().expect("metrics before"));
    assert_eq!(series(&before, "numa_live_open_sessions"), 2);
    assert_eq!(
        series(&before, "numa_live_open_bytes"),
        keep_chunk.len() as i128 + doomed_bytes
    );

    // Abort must subtract exactly the aborted session's bytes and one
    // session — the surviving session's accounting is untouched.
    c.abort_session(doomed.session).expect("abort");
    let after = parse_metrics(&c.metrics().expect("metrics after"));
    assert_eq!(series(&after, "numa_live_open_sessions"), 1);
    assert_eq!(
        series(&after, "numa_live_open_bytes"),
        keep_chunk.len() as i128
    );
    assert_eq!(series(&after, "numa_live_sessions_aborted_total"), 1);

    c.abort_session(keep.session).expect("abort keep");
    let finished = parse_metrics(&c.metrics().expect("metrics final"));
    assert_eq!(series(&finished, "numa_live_open_sessions"), 0);
    assert_eq!(series(&finished, "numa_live_open_bytes"), 0);

    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn lease_reap_decrements_the_session_gauges_exactly() {
    let (server, addr) = spawn_server(
        ServerConfig {
            live: LiveConfig {
                lease: Duration::from_millis(150),
                janitor_period: Duration::from_millis(20),
                ..LiveConfig::default()
            },
            ..ServerConfig::default()
        },
        Arc::new(ProfileStore::new()),
    );
    let server = run_server(server);

    // A client opens and buffers, then dies without sealing.
    let chunk = numa_store::stream::split_profile(&profile(1), 2)[0].to_json();
    {
        let mut dying = Client::connect(addr).expect("dying client");
        let info = dying.open_session("doomed").expect("open");
        dying.append_chunk(info.session, 0, &chunk).expect("append");
    }

    let mut c = Client::connect(addr).expect("observer");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let scrape = parse_metrics(&c.metrics().expect("metrics"));
        if series(&scrape, "numa_live_sessions_reaped_total") >= 1 {
            assert_eq!(series(&scrape, "numa_live_open_sessions"), 0);
            assert_eq!(series(&scrape, "numa_live_open_bytes"), 0);
            break;
        }
        assert!(Instant::now() < deadline, "janitor never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }

    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn abort_racing_durable_appends_leaves_no_gauge_residue() {
    let dir = std::env::temp_dir().join(format!("numa-metrics-abort-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ProfileStore::open_durable(&dir, 64, Default::default()).expect("open durable");
    let (server, addr) = spawn_server(ServerConfig::default(), Arc::new(store));
    let server = run_server(server);

    // Appends on a durable store block on the group commit; aborting
    // from a second connection while one is in flight exercises the
    // reap/rollback races in the gauge accounting. Whatever interleaves,
    // once everything quiesces the gauges must be back to zero.
    let chunks: Vec<String> = numa_store::stream::split_profile(&profile(1), 2)
        .iter()
        .map(|c| c.to_json())
        .collect();
    for round in 0..8 {
        let mut opener = Client::connect(addr).expect("opener");
        let info = opener.open_session(&format!("race-{round}")).expect("open");
        let session = info.session;
        let chunks = chunks.clone();
        let appender = std::thread::spawn(move || {
            for (seq, chunk) in chunks.iter().enumerate() {
                // The abort can land between (or during) appends; both
                // outcomes are legal, the gauges just must not drift.
                if opener.append_chunk(session, seq as u64, chunk).is_err() {
                    return;
                }
            }
        });
        let mut aborter = Client::connect(addr).expect("aborter");
        let _ = aborter.abort_session(session);
        appender.join().expect("appender");
        let _ = aborter.abort_session(session); // idempotent cleanup
    }

    let mut c = Client::connect(addr).expect("observer");
    let scrape = parse_metrics(&c.metrics().expect("metrics"));
    assert_eq!(series(&scrape, "numa_live_open_sessions"), 0);
    assert_eq!(series(&scrape, "numa_live_open_bytes"), 0);
    let stats = c.server_stats().expect("stats");
    assert_eq!(stats.live_sessions, 0);
    assert_eq!(stats.live_open_bytes, 0);

    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
    let _ = std::fs::remove_dir_all(&dir);
}
