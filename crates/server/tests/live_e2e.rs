//! End-to-end streaming-session tests over loopback TCP: a streamed
//! profile must land byte-identically with one-shot ingestion, every
//! failure must be a typed wire error that keeps the connection usable,
//! capability gating must downgrade gracefully, and the janitor must
//! reap sessions whose client died.

use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_server::protocol::{
    caps, encode_frame_flags, encode_request, read_frame, Request, Response, DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
};
use numa_server::{Client, ClientError, LiveConfig, Server, ServerConfig, WireError};
use numa_sim::{ExecMode, Program};
use numa_store::ProfileStore;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small deterministic profile; `rounds` varies the content hash.
fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 8));
    let mut p = Program::new(machine, 8, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 20;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 8;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

fn spawn_server(
    config: ServerConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<numa_server::ServerStatsReport>>,
) {
    let store = Arc::new(ProfileStore::new());
    let server = Server::bind("127.0.0.1:0", config, store).expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

#[test]
fn streamed_profiles_match_oneshot_over_tcp() {
    let streamed = profile(1);
    let streamed_json = streamed.to_json();
    let oneshot_json = profile(2).to_json();

    // In-process oracle: both profiles via plain ingestion.
    let oracle = ProfileStore::new();
    let (oracle_id, _) = oracle.ingest_bytes("streamed", &streamed_json).unwrap();
    oracle.ingest_bytes("oneshot", &oneshot_json).unwrap();

    let (addr, server) = spawn_server(ServerConfig::default());
    let mut c = Client::connect(addr).expect("connect");

    // One profile streamed in 3-thread chunks, one ingested one-shot.
    let (id, added, chunks) = c
        .stream_profile("streamed", &streamed, 3)
        .expect("stream profile");
    assert!(added);
    assert!(chunks >= 2, "8 threads at 3/chunk is at least header + 3");
    assert_eq!(id, oracle_id.to_string());
    c.ingest("oneshot", &oneshot_json).expect("one-shot ingest");

    // The daemon's aggregate equals the oracle's: a streamed profile is
    // indistinguishable from a one-shot one.
    assert_eq!(
        c.aggregate().expect("aggregate"),
        oracle.aggregate().unwrap().text()
    );

    // Re-streaming identical content deduplicates.
    let (id2, added2, _) = c
        .stream_profile("streamed-again", &streamed, 2)
        .expect("re-stream");
    assert!(!added2, "identical content must dedup");
    assert_eq!(id2, id);

    let stats = c.server_stats().expect("server stats");
    assert_eq!(stats.live_sessions, 0);
    assert_eq!(stats.live_open_bytes, 0);
    assert_eq!(stats.live_sessions_opened, 2);
    assert_eq!(stats.live_sessions_sealed, 2);
    assert_eq!(stats.live_chunks_appended, chunks + 5);
    assert_eq!(stats.store_profiles, 2);
    let rendered = stats.render();
    assert!(rendered.contains("2 sealed"), "{rendered}");

    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn streaming_errors_are_typed_and_keep_the_connection() {
    let (addr, server) = spawn_server(ServerConfig {
        live: LiveConfig {
            max_chunk_bytes: 256,
            ..LiveConfig::default()
        },
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr).expect("connect");

    // Append to a session that never existed.
    match c.append_chunk(0xbeef, 0, "{}") {
        Err(ClientError::Server(WireError::UnknownSession { session: 0xbeef })) => {}
        other => panic!("expected UnknownSession, got {other:?}"),
    }

    let info = c.open_session("run").expect("open");
    assert_eq!(info.max_chunk_bytes, 256);

    // Out-of-order chunk.
    match c.append_chunk(info.session, 5, r#"{"Threads":[]}"#) {
        Err(ClientError::Server(WireError::BadChunkSequence {
            got: 5,
            expected: 0,
            ..
        })) => {}
        other => panic!("expected BadChunkSequence, got {other:?}"),
    }

    // Oversized chunk.
    let big = format!(r#"{{"Threads":[{}]}}"#, " ".repeat(300));
    match c.append_chunk(info.session, 0, &big) {
        Err(ClientError::Server(WireError::ChunkTooLarge { max: 256, .. })) => {}
        other => panic!("expected ChunkTooLarge, got {other:?}"),
    }

    // Unparsable chunk payload.
    match c.append_chunk(info.session, 0, "not a chunk") {
        Err(ClientError::Server(WireError::ChunkParse { seq: 0, .. })) => {}
        other => panic!("expected ChunkParse, got {other:?}"),
    }

    // Sealing a header-less chunk set fails atomically and discards the
    // session.
    c.append_chunk(info.session, 0, r#"{"Threads":[]}"#)
        .expect("valid empty chunk");
    match c.seal_session(info.session) {
        Err(ClientError::Server(WireError::SessionIncomplete { .. })) => {}
        other => panic!("expected SessionIncomplete, got {other:?}"),
    }
    match c.abort_session(info.session) {
        Err(ClientError::Server(WireError::UnknownSession { .. })) => {}
        other => panic!("expected UnknownSession after failed seal, got {other:?}"),
    }

    // Every error above was request-level: the same connection still
    // serves, and nothing was half-ingested.
    c.ping().expect("connection survives typed errors");
    assert!(c.list().expect("list").is_empty());
    let stats = c.server_stats().expect("stats");
    assert_eq!(stats.live_sessions, 0);
    assert_eq!(stats.live_sessions_aborted, 1);

    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn capability_bits_gate_streaming_and_keep_connections_alive() {
    let (addr, server) = spawn_server(ServerConfig::default());

    // ping reports the daemon's capability set.
    let mut c = Client::connect(addr).expect("connect");
    assert_eq!(c.ping().expect("ping"), caps::SUPPORTED);
    assert_eq!(c.server_caps(), Some(caps::SUPPORTED));

    // Raw exchange: a frame with an unknown capability bit draws a
    // typed Unsupported — and the SAME connection then serves a valid
    // ping, where the old protocol hung up on any non-zero word.
    let mut s = TcpStream::connect(addr).expect("raw connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let ping = encode_request(&Request::Ping);
    s.write_all(&encode_frame_flags(PROTOCOL_VERSION, 0x8000, &ping).unwrap())
        .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME)
        .expect("readable")
        .expect("answered");
    match serde_json::from_str::<Response>(std::str::from_utf8(&frame.payload).unwrap()) {
        Ok(Response::Error(WireError::Unsupported { supported, .. })) => {
            assert_eq!(supported, caps::SUPPORTED)
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
    s.write_all(&encode_frame_flags(PROTOCOL_VERSION, 0, &ping).unwrap())
        .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME)
        .expect("readable")
        .expect("still served");
    assert_eq!(frame.flags, caps::SUPPORTED, "responses advertise caps");
    match serde_json::from_str::<Response>(std::str::from_utf8(&frame.payload).unwrap()) {
        Ok(Response::Pong) => {}
        other => panic!("expected Pong after capability error, got {other:?}"),
    }

    // A streaming op whose frame does not declare STREAMING (a client
    // from before the capability existed) gets a typed refusal naming
    // the missing bit.
    let open = encode_request(&Request::OpenSession {
        label: "old-client".to_string(),
    });
    s.write_all(&encode_frame_flags(PROTOCOL_VERSION, 0, &open).unwrap())
        .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME)
        .expect("readable")
        .expect("answered");
    match serde_json::from_str::<Response>(std::str::from_utf8(&frame.payload).unwrap()) {
        Ok(Response::Error(WireError::Unsupported { feature, .. })) => {
            assert_eq!(feature, caps::STREAMING)
        }
        other => panic!("expected Unsupported{{STREAMING}}, got {other:?}"),
    }

    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn binary_codec_ingest_and_stream_match_json_over_tcp() {
    let (addr, server) = spawn_server(ServerConfig::default());
    let mut c = Client::connect(addr).expect("connect");
    assert!(c.binary_codec().expect("negotiate"), "daemon speaks binary");

    let p1 = profile(1);
    let p2 = profile(2);
    let oracle = ProfileStore::new();
    let (id1, _) = oracle.ingest_bytes("bin", &p1.to_json()).unwrap();
    let (id2, _) = oracle.ingest_bytes("streamed", &p2.to_json()).unwrap();

    // Negotiated ingest travels as codec bytes, yet the stored identity
    // is the JSON oracle's: content ids are format-independent.
    let (id, added) = c.ingest_profile("bin", &p1).expect("binary ingest");
    assert!(added);
    assert_eq!(id, id1.to_string());
    // The same content arriving as JSON dedups against it.
    let (again, added) = c.ingest("bin-as-json", &p1.to_json()).expect("json ingest");
    assert!(!added);
    assert_eq!(again, id);

    // A streamed profile rides binary chunks when negotiated, and still
    // matches what one-shot ingestion would have stored.
    let (sid, added, chunks) = c.stream_profile("streamed", &p2, 3).expect("binary stream");
    assert!(added);
    assert!(chunks >= 2, "header plus thread batches");
    assert_eq!(sid, id2.to_string());
    assert_eq!(
        c.aggregate().expect("aggregate"),
        oracle.aggregate().unwrap().text()
    );

    // A binary op whose frame does not declare BINARY_CODEC (a client
    // from before the capability existed) draws a typed refusal naming
    // the missing bit — and the connection keeps serving.
    let mut s = TcpStream::connect(addr).expect("raw connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let req = encode_request(&Request::IngestBinary {
        label: "old-client".to_string(),
        bytes: numa_codec::encode_profile(&p1),
    });
    s.write_all(&encode_frame_flags(PROTOCOL_VERSION, 0, &req).unwrap())
        .unwrap();
    let frame = read_frame(&mut s, DEFAULT_MAX_FRAME)
        .expect("readable")
        .expect("answered");
    match serde_json::from_str::<Response>(std::str::from_utf8(&frame.payload).unwrap()) {
        Ok(Response::Error(WireError::Unsupported { feature, .. })) => {
            assert_eq!(feature, caps::BINARY_CODEC)
        }
        other => panic!("expected Unsupported{{BINARY_CODEC}}, got {other:?}"),
    }

    // Garbage codec bytes with the right caps are a request-level parse
    // error, not a dead connection.
    match c.ingest_binary("junk", vec![0xAB, 0xCD, 0xEF]) {
        Err(ClientError::Server(WireError::ProfileParse { label, .. })) => {
            assert_eq!(label, "junk")
        }
        other => panic!("expected ProfileParse, got {other:?}"),
    }
    assert_eq!(c.list().expect("list").len(), 2);

    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn dead_clients_are_reaped_and_nothing_is_half_ingested() {
    let (addr, server) = spawn_server(ServerConfig {
        live: LiveConfig {
            lease: Duration::from_millis(200),
            janitor_period: Duration::from_millis(25),
            ..LiveConfig::default()
        },
        ..ServerConfig::default()
    });

    // A client opens a session, streams part of a profile, then "dies"
    // (drops the connection without sealing or aborting).
    let streamed = profile(1);
    {
        let mut dying = Client::connect(addr).expect("connect dying client");
        let info = dying.open_session("doomed").expect("open");
        let chunks = numa_store::stream::split_profile(&streamed, 2);
        dying
            .append_chunk(info.session, 0, &chunks[0].to_json())
            .expect("first chunk");
        dying
            .append_chunk(info.session, 1, &chunks[1].to_json())
            .expect("second chunk");
    } // connection dropped mid-session

    // The janitor reaps the expired lease; poll observability until it
    // shows up.
    let mut c = Client::connect(addr).expect("connect observer");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.server_stats().expect("stats");
        if stats.live_leases_reaped >= 1 {
            assert_eq!(stats.live_sessions, 0);
            assert_eq!(stats.live_open_bytes, 0);
            assert!(stats.render().contains("1 lease(s) reaped"));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "janitor never reaped the dead client's session"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The partial stream left nothing behind; a complete stream of the
    // same profile afterwards ingests cleanly (no stale session state).
    assert!(c.list().expect("list").is_empty());
    let (_, added, _) = c
        .stream_profile("recovered", &streamed, 2)
        .expect("full stream after reap");
    assert!(added);
    assert_eq!(c.list().expect("list").len(), 1);

    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}

#[test]
fn connect_retry_waits_for_a_slow_daemon() {
    // Nothing listening: a short deadline returns the connect error
    // instead of spinning forever.
    let start = Instant::now();
    let err = Client::connect_retry("127.0.0.1:1", Duration::from_millis(300));
    assert!(err.is_err(), "no listener must yield an error");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "deadline must bound the retry loop"
    );

    // A daemon that binds late: connect_retry bridges the gap that
    // tests used to cover with ad-hoc ping-poll loops.
    let (addr, server) = spawn_server(ServerConfig::default());
    let mut c = Client::connect_retry(addr, Duration::from_secs(5)).expect("retry connect");
    assert_eq!(c.ping().expect("ping"), caps::SUPPORTED);
    c.shutdown().expect("shutdown");
    server.join().unwrap().expect("server run");
}
