//! Property tests for the wire protocol: arbitrary payloads survive
//! framing, arbitrary TCP fragmentation reassembles, and every
//! malformed byte stream yields a typed error — never a panic.

use numa_server::protocol::{
    caps, decode_request, decode_response, encode_frame, encode_frame_flags, encode_request,
    encode_response, frame_len, read_frame, FrameDecoder, FrameError, RecvError, ReportFormat,
    Request, Response, WireError, HEADER_LEN, PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// Arbitrary payload bytes (0–1528 bytes, every byte value reachable).
fn payload_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u64>(), 0..192)
        .prop_map(|words| words.iter().flat_map(|w| w.to_le_bytes()).collect())
}

/// Arbitrary short text built from arbitrary u64s (printable-ish but
/// including multi-byte UTF-8).
fn text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u64>(), 0..12).prop_map(|words| {
        words
            .iter()
            .filter_map(|w| char::from_u32((w % 0x2_0000) as u32))
            .collect()
    })
}

proptest! {
    #[test]
    fn single_frame_round_trips(payload in payload_strategy(), version in 0u16..64) {
        let bytes = encode_frame(version, &payload).unwrap();
        let mut decoder = FrameDecoder::new(payload.len().max(1));
        decoder.push(&bytes);
        let frame = decoder.next_frame().expect("valid frame").expect("complete");
        prop_assert_eq!(frame.version, version);
        prop_assert_eq!(frame.flags, 0);
        prop_assert_eq!(frame.payload, payload);
        // Nothing left over.
        prop_assert!(decoder.next_frame().expect("empty tail").is_none());
        prop_assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn capability_flags_round_trip(payload in payload_strategy(), flags in any::<u64>()) {
        // ANY flags word — known capability bits, unknown future bits,
        // all of them — must survive framing; policy about unknown bits
        // belongs to the daemon, not the codec.
        let flags = flags as u16;
        let bytes = encode_frame_flags(PROTOCOL_VERSION, flags, &payload).unwrap();
        let mut decoder = FrameDecoder::new(payload.len().max(1));
        decoder.push(&bytes);
        let frame = decoder.next_frame().expect("valid frame").expect("complete");
        prop_assert_eq!(frame.flags, flags);
        prop_assert_eq!(frame.payload, payload);
    }

    #[test]
    fn chunked_streams_reassemble(
        payloads in prop::collection::vec(payload_strategy(), 1..5),
        chunk in 1usize..23,
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(PROTOCOL_VERSION, p).unwrap());
        }
        // Feed the concatenated stream in fixed-size slivers; frame
        // boundaries land anywhere relative to chunk boundaries.
        let mut decoder = FrameDecoder::new(1 << 20);
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            decoder.push(piece);
            while let Some(frame) = decoder.next_frame().expect("valid stream") {
                got.push(frame.payload);
            }
        }
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn oversized_frames_are_typed_errors(extra in 1usize..4096, max in 8usize..256) {
        let payload = vec![0xabu8; max + extra];
        let bytes = encode_frame(PROTOCOL_VERSION, &payload).unwrap();
        let mut decoder = FrameDecoder::new(max);
        // Push only the header: the cap must trip before any payload
        // is buffered.
        decoder.push(&bytes[..HEADER_LEN]);
        let err = decoder.next_frame().expect_err("over the cap");
        prop_assert_eq!(err, FrameError::Oversized { len: max + extra, max });
        // The decoder stays poisoned: more bytes never un-error it.
        decoder.push(&bytes[HEADER_LEN..]);
        prop_assert!(decoder.next_frame().is_err());
    }

    #[test]
    fn truncated_frames_never_complete(payload in payload_strategy(), keep_permille in 0u64..1000) {
        let bytes = encode_frame(PROTOCOL_VERSION, &payload).unwrap();
        let keep = (bytes.len() as u64 * keep_permille / 1000) as usize;
        if keep < bytes.len() {
            let mut decoder = FrameDecoder::new(1 << 20);
            decoder.push(&bytes[..keep]);
            // An incomplete frame is "need more bytes", not an error and
            // not a frame.
            prop_assert!(decoder.next_frame().expect("prefix is valid").is_none());
            // The blocking reader surfaces the same prefix as a typed
            // truncation once EOF arrives (or a clean EOF at offset 0).
            let mut reader = std::io::Cursor::new(bytes[..keep].to_vec());
            match read_frame(&mut reader, 1 << 20) {
                Ok(None) => prop_assert_eq!(keep, 0),
                Err(RecvError::TruncatedEof { got }) => prop_assert_eq!(got, keep),
                other => prop_assert!(false, "unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn garbage_magic_is_rejected(payload in payload_strategy(), first in 0u64..0xffff_ffff) {
        let mut bytes = encode_frame(PROTOCOL_VERSION, &payload).unwrap();
        let magic = (first as u32).to_be_bytes();
        if magic != *b"HPCD" {
            bytes[..4].copy_from_slice(&magic);
            let mut decoder = FrameDecoder::new(1 << 20);
            decoder.push(&bytes);
            prop_assert_eq!(
                decoder.next_frame().expect_err("bad magic"),
                FrameError::BadMagic(magic)
            );
        }
    }

    #[test]
    fn requests_round_trip_as_json(label in text_strategy(), body in text_strategy(), n in 0usize..10_000) {
        let requests = [
            Request::Ping,
            Request::Ingest { label: label.clone(), json: body.clone() },
            Request::List,
            Request::Resolve { reference: label.clone() },
            Request::Aggregate,
            Request::Top { n },
            Request::Report { profile: label.clone(), format: ReportFormat::Json },
            Request::CodeView { profile: label.clone(), min_share_permille: (n % 1000) as u16 },
            Request::AddressView { profile: label.clone(), var: body.clone() },
            Request::Diff { before: label.clone(), after: body.clone() },
            Request::StoreStats,
            Request::ServerStats,
            Request::ClearCache,
            Request::Shutdown,
            Request::OpenSession { label: label.clone() },
            Request::AppendChunk { session: n as u64, seq: n as u64, chunk: body.clone() },
            Request::SealSession { session: n as u64 },
            Request::AbortSession { session: n as u64 },
            // Binary-envelope requests ride the same encode/decode
            // entry points as the JSON ones.
            Request::IngestBinary { label: label.clone(), bytes: body.clone().into_bytes() },
            Request::AppendChunkBinary { session: n as u64, seq: n as u64, bytes: body.clone().into_bytes() },
        ];
        for req in &requests {
            let decoded = decode_request(&encode_request(req)).expect("round-trip");
            prop_assert_eq!(&decoded, req);
        }
        // Only session and binary-codec ops rely on capability bits.
        for req in &requests {
            let expected = match req {
                Request::OpenSession { .. } | Request::AppendChunk { .. }
                | Request::SealSession { .. } | Request::AbortSession { .. } => caps::STREAMING,
                Request::IngestBinary { .. } => caps::BINARY_CODEC,
                Request::AppendChunkBinary { .. } => caps::STREAMING | caps::BINARY_CODEC,
                _ => 0,
            };
            prop_assert_eq!(req.required_caps(), expected);
        }
    }

    #[test]
    fn responses_round_trip_as_json(text in text_strategy(), added in any::<bool>()) {
        let responses = [
            Response::Pong,
            Response::Ingested { id: text.clone(), added },
            Response::Text(text.clone()),
            Response::CacheCleared,
            Response::ShuttingDown,
            Response::Error(WireError::UnknownProfile { reference: text.clone() }),
            Response::Error(WireError::AmbiguousReference {
                reference: text.clone(),
                candidates: vec![text.clone(), text.clone()],
            }),
            Response::Error(WireError::Malformed { detail: text.clone() }),
            Response::Error(WireError::EmptyStore),
            Response::SessionOpened {
                session: added as u64,
                lease_ms: 30_000,
                max_chunk_bytes: 4 << 20,
                max_session_bytes: 64 << 20,
            },
            Response::ChunkAppended { session: 7, seq: added as u64, open_bytes: 1024 },
            Response::SessionSealed { id: text.clone(), added, chunks: 5 },
            Response::SessionAborted { session: 7 },
            Response::Error(WireError::Unsupported { feature: caps::STREAMING, supported: caps::SUPPORTED }),
            Response::Error(WireError::UnknownSession { session: 7 }),
            Response::Error(WireError::BadChunkSequence { session: 7, got: 3, expected: 1 }),
            Response::Error(WireError::ChunkTooLarge { session: 7, len: 9000, max: 4096 }),
            Response::Error(WireError::SessionBufferFull { session: 7, bytes: 9000, max: 4096 }),
            Response::Error(WireError::Busy { detail: text.clone() }),
            Response::Error(WireError::ChunkParse { session: 7, seq: 2, message: text.clone() }),
            Response::Error(WireError::SessionIncomplete { session: 7, detail: text.clone() }),
        ];
        for resp in &responses {
            let decoded = decode_response(&encode_response(resp)).expect("round-trip");
            prop_assert_eq!(&decoded, resp);
        }
    }
}

#[test]
fn flags_word_is_accepted_where_reserved_was_rejected() {
    // The header word at offsets 6..8 used to be required-zero; it is
    // the capability flags word now, and the decoder must surface any
    // value rather than poison the stream (unknown bits are the
    // daemon's policy decision, answered with a typed error).
    let mut bytes = encode_frame(PROTOCOL_VERSION, b"x").unwrap();
    bytes[6] = 0x12;
    bytes[7] = 0x34;
    let mut decoder = FrameDecoder::new(64);
    decoder.push(&bytes);
    let frame = decoder.next_frame().unwrap().expect("complete frame");
    assert_eq!(frame.flags, 0x1234);
    assert_eq!(frame.payload, b"x");
}

#[test]
fn capability_set_is_coherent() {
    // STREAMING and BINARY_CODEC are implemented, and render() names
    // known bits.
    assert_eq!(caps::SUPPORTED & caps::STREAMING, caps::STREAMING);
    assert_eq!(caps::SUPPORTED & caps::BINARY_CODEC, caps::BINARY_CODEC);
    assert_ne!(caps::STREAMING, caps::BINARY_CODEC);
    assert!(caps::render(caps::STREAMING).contains("streaming"));
    assert!(caps::render(caps::BINARY_CODEC).contains("binary-codec"));
    assert!(caps::render(0).contains("none"));
    assert!(caps::render(0x8000).contains("unknown"));
}

#[test]
fn truncated_binary_requests_are_typed_malformed_errors() {
    use numa_server::protocol::BINARY_REQUEST_MAGIC;
    let full = encode_request(&Request::IngestBinary {
        label: "run".to_string(),
        bytes: vec![1, 2, 3],
    });
    assert!(full.starts_with(&BINARY_REQUEST_MAGIC));
    // Every proper prefix of the envelope header (magic, opcode, label
    // length, label) decodes to a typed error, never a panic; the codec
    // body itself is validated at execute time, not decode time.
    let header_len = 4 + 1 + 4 + "run".len();
    for cut in 4..header_len {
        let err = decode_request(&full[..cut]).unwrap_err();
        assert!(
            matches!(err, WireError::Malformed { .. }),
            "cut={cut} {err:?}"
        );
    }
    // An unknown opcode is typed, too.
    let mut bad = full.clone();
    bad[4] = 0xEE;
    let err = decode_request(&bad).unwrap_err();
    assert!(matches!(err, WireError::Malformed { .. }), "{err:?}");
}

#[test]
fn non_utf8_payload_is_a_typed_malformed_error() {
    let err = decode_request(&[0xff, 0xfe, 0x00]).unwrap_err();
    assert!(matches!(err, WireError::Malformed { .. }), "{err:?}");
    let err = decode_request(b"{\"not\": \"a request\"}").unwrap_err();
    assert!(matches!(err, WireError::Malformed { .. }), "{err:?}");
}

#[test]
fn frame_len_rejects_payloads_past_u32() {
    // The wire length field is a u32; encoding anything larger must be
    // a typed error, never a silently truncated header. Checked via the
    // length helper so the test does not allocate 4 GiB.
    assert_eq!(frame_len(0).unwrap(), 0);
    assert_eq!(frame_len(u32::MAX as usize).unwrap(), u32::MAX);
    assert_eq!(
        frame_len(u32::MAX as usize + 1).unwrap_err(),
        FrameError::Oversized {
            len: u32::MAX as usize + 1,
            max: u32::MAX as usize,
        }
    );
}
