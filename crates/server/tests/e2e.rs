//! End-to-end daemon tests: concurrent clients over loopback must see
//! exactly what a single-threaded in-process store would answer, the
//! daemon must reject malformed/oversized input without dying, and
//! shutdown must drain in-flight requests.

use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_server::protocol::{encode_frame, read_frame, Response, PROTOCOL_VERSION};
use numa_server::{Client, ClientError, ReportFormat, Server, ServerConfig, WireError};
use numa_sim::{ExecMode, Program};
use numa_store::{ProfileStore, Query};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A small deterministic profile; `rounds` varies the content hash.
fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 8));
    let mut p = Program::new(machine, 8, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 20;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 8;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

fn spawn_server(
    config: ServerConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<numa_server::ServerStatsReport>>,
) {
    let store = Arc::new(ProfileStore::new());
    let server = Server::bind("127.0.0.1:0", config, store).expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

#[test]
fn eight_concurrent_clients_match_the_single_threaded_oracle() {
    const CLIENTS: usize = 8;

    // The oracle: the same corpus in an in-process store, queried on
    // one thread.
    let corpus: Vec<(String, String)> = (1..=CLIENTS)
        .map(|i| (format!("run-{i}"), profile(i).to_json()))
        .collect();
    let oracle = ProfileStore::new();
    for (label, json) in &corpus {
        oracle.ingest_bytes(label, json).expect("oracle ingest");
    }
    let oracle_aggregate = oracle.aggregate().expect("oracle aggregate").text();
    let oracle_top = oracle
        .query(Query::TopVariables(3))
        .expect("oracle top")
        .text();
    let oracle_report = {
        let sp = oracle.resolve("run-3").expect("oracle resolve");
        oracle
            .query(Query::TextReport(sp.id))
            .expect("oracle report")
            .text()
    };

    let (addr, server) = spawn_server(ServerConfig {
        workers: CLIENTS, // every client can be in flight at once
        ..ServerConfig::default()
    });

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let corpus = Arc::new(corpus);
    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            let corpus = Arc::clone(&corpus);
            let oracle_aggregate = oracle_aggregate.clone();
            let oracle_top = oracle_top.clone();
            let oracle_report = oracle_report.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                // Phase 1 — mixed concurrent ingest: every client sends
                // its own run plus a duplicate of a neighbour's, so the
                // daemon sees adds and dedups interleaved.
                let (label, json) = &corpus[t];
                c.ingest(label, json).expect("ingest own");
                let (nl, nj) = &corpus[(t + 1) % CLIENTS];
                c.ingest(nl, nj).expect("ingest duplicate");
                // Ingestion is idempotent by content hash, so after the
                // barrier the stored set equals the oracle's no matter
                // how the 16 ingests interleaved.
                barrier.wait();
                // Phase 2 — concurrent queries must match the oracle.
                for _ in 0..3 {
                    assert_eq!(c.aggregate().expect("aggregate"), oracle_aggregate);
                    assert_eq!(c.top(3).expect("top"), oracle_top);
                    assert_eq!(
                        c.report("run-3", ReportFormat::Text).expect("report"),
                        oracle_report
                    );
                }
                let entries = c.list().expect("list");
                assert_eq!(entries.len(), CLIENTS);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    // Observability: the daemon counted every op and latencies are
    // monotone across percentiles.
    let mut c = Client::connect(addr).expect("connect for stats");
    let stats = c.server_stats().expect("server-stats");
    assert_eq!(stats.store_profiles, CLIENTS);
    let ingests = stats
        .per_op
        .iter()
        .find(|o| o.op == "ingest")
        .expect("ingest op counted");
    assert_eq!(ingests.requests, (CLIENTS * 2) as u64);
    let aggregates = stats
        .per_op
        .iter()
        .find(|o| o.op == "aggregate")
        .expect("aggregate op counted");
    assert_eq!(aggregates.requests, (CLIENTS * 3) as u64);
    assert!(stats.latency.count >= (CLIENTS * 11) as u64);
    assert!(stats.latency.p50_us <= stats.latency.p95_us);
    assert!(stats.latency.p95_us <= stats.latency.p99_us);
    assert!(stats.latency.p99_us <= stats.latency.max_us.max(stats.latency.p99_us));
    // The repeated aggregate/top/report queries hit the memo cache.
    assert!(
        stats.cache_hits > 0,
        "warm queries must be served from the cache: {stats:?}"
    );

    c.shutdown().expect("shutdown");
    let final_stats = server.join().expect("server thread").expect("run ok");
    assert_eq!(final_stats.errors_total, 0, "{final_stats:?}");
}

#[test]
fn shutdown_answers_the_in_flight_request_then_drains() {
    let (addr, server) = spawn_server(ServerConfig::default());

    let mut a = Client::connect(addr).expect("client a");
    let mut b = Client::connect(addr).expect("client b");
    a.ingest("r", &profile(1).to_json()).expect("ingest");

    // The shutdown request itself is "in flight" when the flag flips:
    // it must still be answered (that is the drain contract).
    b.shutdown().expect("shutdown answered");
    let stats = server.join().expect("server thread").expect("run ok");
    assert_eq!(stats.store_profiles, 1);

    // After drain the daemon is gone: new exchanges fail.
    let err = a.ping();
    assert!(err.is_err(), "daemon must be down, got {err:?}");
}

#[test]
fn malformed_and_oversized_frames_get_typed_errors_and_the_daemon_survives() {
    let (addr, server) = spawn_server(ServerConfig {
        max_frame: 1024,
        ..ServerConfig::default()
    });

    // Oversized: a frame over the 1 KiB cap is rejected by header
    // inspection with a typed error.
    {
        let mut s = TcpStream::connect(addr).expect("connect raw");
        s.write_all(&encode_frame(PROTOCOL_VERSION, &vec![b'x'; 4096]).expect("encode"))
            .expect("send oversized");
        let frame = read_frame(&mut s, 1 << 20).expect("reply").expect("frame");
        let resp = numa_server::protocol::decode_response(&frame.payload).expect("decode");
        assert!(
            matches!(
                resp,
                Response::Error(WireError::Oversized {
                    len: 4096,
                    max: 1024
                })
            ),
            "{resp:?}"
        );
    }

    // Garbage bytes: typed malformed error, connection closed.
    {
        let mut s = TcpStream::connect(addr).expect("connect raw");
        s.write_all(b"GET / HTTP/1.1\r\n\r\n")
            .expect("send garbage");
        let frame = read_frame(&mut s, 1 << 20).expect("reply").expect("frame");
        let resp = numa_server::protocol::decode_response(&frame.payload).expect("decode");
        assert!(
            matches!(resp, Response::Error(WireError::Malformed { .. })),
            "{resp:?}"
        );
    }

    // Valid frame, bogus JSON: typed malformed error.
    {
        let mut s = TcpStream::connect(addr).expect("connect raw");
        s.write_all(
            &encode_frame(PROTOCOL_VERSION, b"{\"no\": \"such request\"}").expect("encode"),
        )
        .expect("send bogus");
        let frame = read_frame(&mut s, 1 << 20).expect("reply").expect("frame");
        let resp = numa_server::protocol::decode_response(&frame.payload).expect("decode");
        assert!(
            matches!(resp, Response::Error(WireError::Malformed { .. })),
            "{resp:?}"
        );
    }

    // Wrong protocol version: typed version error.
    {
        let mut s = TcpStream::connect(addr).expect("connect raw");
        s.write_all(&encode_frame(99, b"\"Ping\"").expect("encode"))
            .expect("send v99");
        let frame = read_frame(&mut s, 1 << 20).expect("reply").expect("frame");
        assert_eq!(
            frame.version, PROTOCOL_VERSION,
            "server frames its own version"
        );
        let resp = numa_server::protocol::decode_response(&frame.payload).expect("decode");
        assert!(
            matches!(
                resp,
                Response::Error(WireError::UnsupportedVersion {
                    got: 99,
                    supported: 1
                })
            ),
            "{resp:?}"
        );
    }

    // The daemon took all of that without dying.
    let mut c = Client::connect(addr).expect("connect");
    c.ping().expect("still alive");
    let stats = c.server_stats().expect("stats");
    assert!(stats.rejected_oversized >= 1, "{stats:?}");
    assert!(stats.malformed_frames >= 2, "{stats:?}");

    c.shutdown().expect("shutdown");
    server.join().expect("join").expect("run ok");
}

#[test]
fn request_level_errors_keep_the_connection_usable() {
    let (addr, server) = spawn_server(ServerConfig::default());
    let mut c = Client::connect(addr).expect("connect");

    // Set-level query on an empty store: typed error, connection lives.
    match c.aggregate() {
        Err(ClientError::Server(WireError::EmptyStore)) => {}
        other => panic!("expected EmptyStore, got {other:?}"),
    }
    // Unknown profile reference: typed error, connection lives.
    match c.report("nope", ReportFormat::Text) {
        Err(ClientError::Server(WireError::UnknownProfile { .. })) => {}
        other => panic!("expected UnknownProfile, got {other:?}"),
    }
    // Unparsable profile payload: typed error, connection lives.
    match c.ingest("bad", "{\"broken\": true") {
        Err(ClientError::Server(WireError::ProfileParse { .. })) => {}
        other => panic!("expected ProfileParse, got {other:?}"),
    }
    // Same connection still serves good requests.
    c.ingest("ok", &profile(1).to_json()).expect("ingest");
    assert!(c
        .aggregate()
        .expect("aggregate")
        .contains("cross-run aggregate: 1 run(s)"));

    // A label shared by two distinct profiles: resolving it is a typed
    // ambiguity listing both candidates, and a full id still works.
    let (id_a, _) = c.ingest("dup", &profile(2).to_json()).expect("ingest dup");
    let (id_b, _) = c.ingest("dup", &profile(3).to_json()).expect("ingest dup");
    match c.resolve("dup") {
        Err(ClientError::Server(WireError::AmbiguousReference {
            reference,
            candidates,
        })) => {
            assert_eq!(reference, "dup");
            assert_eq!(candidates.len(), 2);
            assert!(candidates.iter().any(|cand| cand.contains(&id_a)));
            assert!(candidates.iter().any(|cand| cand.contains(&id_b)));
        }
        other => panic!("expected AmbiguousReference, got {other:?}"),
    }
    let (resolved, label) = c.resolve(&id_a).expect("resolve by full id");
    assert_eq!(resolved, id_a);
    assert_eq!(label, "dup");

    let stats = c.server_stats().expect("stats");
    assert!(stats.errors_total >= 4, "{stats:?}");

    c.shutdown().expect("shutdown");
    server.join().expect("join").expect("run ok");
}

#[test]
fn idle_connections_time_out_without_killing_the_daemon() {
    let (addr, server) = spawn_server(ServerConfig {
        read_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });

    // Open a connection and send nothing; the daemon drops it after
    // the read timeout and counts it.
    let idle = TcpStream::connect(addr).expect("connect idle");
    std::thread::sleep(Duration::from_millis(400));

    let mut c = Client::connect(addr).expect("connect");
    c.ping().expect("alive after idle drop");
    let stats = c.server_stats().expect("stats");
    assert!(stats.timeouts >= 1, "{stats:?}");
    drop(idle);

    c.shutdown().expect("shutdown");
    server.join().expect("join").expect("run ok");
}
