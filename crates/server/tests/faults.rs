//! Network- and storage-fault e2e tests: the daemon must survive
//! clients that disconnect mid-frame, stall mid-frame, or deliver
//! truncated bytes, and a daemon whose disk fills up must answer
//! ingests with a typed `NotDurable` error while continuing to serve
//! reads from the data it already acknowledged.

use numa_faults::{FaultSpec, FaultyStorage};
use numa_machine::{Machine, MachinePreset, PlacementPolicy};
use numa_profiler::{finish_profile, NumaProfile, NumaProfiler, ProfilerConfig};
use numa_sampling::{MechanismConfig, MechanismKind};
use numa_server::protocol::{encode_frame, PROTOCOL_VERSION};
use numa_server::{Client, ClientError, ReportFormat, Server, ServerConfig, WireError};
use numa_sim::{ExecMode, Program};
use numa_store::{PersistOptions, ProfileId, ProfileStore, StoreConfig};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A small deterministic profile; `rounds` varies the content hash.
fn profile(rounds: usize) -> NumaProfile {
    let machine = Machine::from_preset(MachinePreset::AmdMagnyCours);
    let config = ProfilerConfig::new(MechanismConfig::for_tests(MechanismKind::Ibs, 8));
    let profiler = Arc::new(NumaProfiler::new(machine.clone(), config, 8));
    let mut p = Program::new(machine, 4, ExecMode::Sequential, profiler.clone());
    let size = 1u64 << 20;
    let mut base = 0;
    p.serial("main", |ctx| {
        base = ctx.alloc("z", size, PlacementPolicy::FirstTouch);
        ctx.store_range(base, size / 64, 64);
    });
    for _ in 0..rounds {
        p.parallel("compute._omp", |tid, ctx| {
            let chunk = size / 4;
            ctx.load_range(base + tid as u64 * chunk, chunk / 64, 64);
        });
    }
    finish_profile(p, profiler)
}

fn spawn_server_with_store(
    config: ServerConfig,
    store: Arc<ProfileStore>,
) -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<numa_server::ServerStatsReport>>,
) {
    let server = Server::bind("127.0.0.1:0", config, store).expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn spawn_server(
    config: ServerConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<numa_server::ServerStatsReport>>,
) {
    spawn_server_with_store(config, Arc::new(ProfileStore::new()))
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "numa-server-faults-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn mid_frame_disconnects_leave_the_daemon_serving() {
    let (addr, server) = spawn_server(ServerConfig::default());

    // A well-formed frame, cut at every interesting byte offset: inside
    // the header, exactly after the header, and mid-payload. The peer
    // vanishes without warning each time.
    let frame = encode_frame(PROTOCOL_VERSION, b"\"Ping\"").expect("encode");
    for cut in [1, 3, frame.len() / 2, frame.len() - 1] {
        let mut s = TcpStream::connect(addr).expect("connect raw");
        s.write_all(&frame[..cut]).expect("send truncated prefix");
        drop(s); // RST/FIN mid-frame
    }

    // The daemon shrugged all of that off and still answers.
    let mut c = Client::connect(addr).expect("connect");
    c.ping().expect("alive after mid-frame disconnects");
    c.ingest("after", &profile(1).to_json()).expect("ingest");
    assert_eq!(c.list().expect("list").len(), 1);

    c.shutdown().expect("shutdown");
    server.join().expect("join").expect("run ok");
}

#[test]
fn stalled_mid_frame_reads_time_out_and_are_counted() {
    let (addr, server) = spawn_server(ServerConfig {
        read_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    });

    // Send half a frame, then stall: the daemon must not wait forever
    // for the rest. It drops the connection after the read timeout and
    // counts it, without taking a worker hostage.
    let frame = encode_frame(PROTOCOL_VERSION, b"\"Ping\"").expect("encode");
    let mut stalled = TcpStream::connect(addr).expect("connect stalled");
    stalled
        .write_all(&frame[..frame.len() / 2])
        .expect("send half frame");
    std::thread::sleep(Duration::from_millis(400));

    let mut c = Client::connect(addr).expect("connect");
    c.ping().expect("alive after stalled peer");
    let stats = c.server_stats().expect("stats");
    assert!(stats.timeouts >= 1, "{stats:?}");
    drop(stalled);

    c.shutdown().expect("shutdown");
    server.join().expect("join").expect("run ok");
}

#[test]
fn byte_level_truncation_gets_a_typed_error_or_a_clean_drop() {
    let (addr, server) = spawn_server(ServerConfig::default());

    // A frame whose header promises more payload than the peer ever
    // delivers, followed by a clean close. Whatever the daemon answers
    // (typed malformed error or silent drop), it must keep serving.
    let full = encode_frame(PROTOCOL_VERSION, b"\"Ping\"").expect("encode");
    {
        let mut s = TcpStream::connect(addr).expect("connect raw");
        s.write_all(&full[..full.len() - 3])
            .expect("send truncated");
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut rest = Vec::new();
        let _ = std::io::Read::read_to_end(&mut s, &mut rest); // reply or EOF, both fine
    }
    // Garbage that cannot even parse as a header.
    {
        let mut s = TcpStream::connect(addr).expect("connect raw");
        s.write_all(b"\x00\x01").expect("send stub header");
        drop(s);
    }

    let mut c = Client::connect(addr).expect("connect");
    c.ping().expect("alive after truncated frames");

    c.shutdown().expect("shutdown");
    server.join().expect("join").expect("run ok");
}

#[test]
fn full_disk_daemon_answers_ingest_with_not_durable_and_keeps_serving_reads() {
    let dir = scratch("enospc");

    // Budget the fake disk so exactly one profile fits: file header,
    // first record, and a little slack for the group commit.
    let first = profile(1);
    let first_json = first.to_json();
    let (ProfileId(hash), canonical) = ProfileId::of(&first);
    let record = numa_store::wal::encode_record("one", &canonical, hash);
    let budget = numa_store::wal::FILE_HEADER_LEN + record.len() as u64 + 16;

    let storage = Arc::new(FaultyStorage::new(FaultSpec {
        enospc_after: Some(budget),
        ..FaultSpec::default()
    }));
    let store = ProfileStore::open_durable_config_with(
        &dir,
        StoreConfig {
            cache_capacity: 16,
            ..StoreConfig::default()
        },
        PersistOptions {
            snapshot_wal_bytes: u64::MAX, // no background compaction
            fsync: false,
        },
        storage,
    )
    .expect("open durable store over faulty storage");
    let (addr, server) = spawn_server_with_store(ServerConfig::default(), Arc::new(store));

    let mut c = Client::connect(addr).expect("connect");

    // The first ingest fits on disk and is acked.
    let (id_one, added) = c.ingest("one", &first_json).expect("ingest one");
    assert!(added);

    // The second hits ENOSPC. The client sees a typed durability error,
    // not a dropped connection and not a silent ack.
    match c.ingest("two", &profile(2).to_json()) {
        Err(ClientError::Server(WireError::NotDurable { detail })) => {
            assert!(
                detail.contains("no space left"),
                "detail should carry the storage error: {detail}"
            );
        }
        other => panic!("expected NotDurable, got {other:?}"),
    }

    // Reads still work on the same connection, and the acked profile is
    // fully served; the failed one is absent everywhere.
    let entries = c.list().expect("list");
    assert_eq!(entries.len(), 1);
    let (resolved, label) = c.resolve("one").expect("resolve acked profile");
    assert_eq!(resolved, id_one);
    assert_eq!(label, "one");
    assert!(c
        .aggregate()
        .expect("aggregate")
        .contains("cross-run aggregate: 1 run(s)"));
    assert!(!c
        .report("one", ReportFormat::Text)
        .expect("report")
        .is_empty());
    match c.resolve("two") {
        Err(ClientError::Server(WireError::UnknownProfile { .. })) => {}
        other => panic!("failed ingest must not be resolvable, got {other:?}"),
    }

    // A fresh connection sees the same picture: the daemon did not wedge.
    let mut c2 = Client::connect(addr).expect("reconnect");
    assert_eq!(c2.list().expect("list").len(), 1);

    c.shutdown().expect("shutdown");
    server.join().expect("join").expect("run ok");

    // After the daemon exits, a clean-storage reopen recovers exactly
    // the acked profile: the ENOSPC'd one never reached the log.
    let recovered = ProfileStore::open_durable(
        &dir,
        16,
        PersistOptions {
            snapshot_wal_bytes: u64::MAX,
            fsync: false,
        },
    )
    .expect("reopen");
    assert_eq!(recovered.len(), 1);
    assert!(recovered.resolve("one").is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_disk_streaming_session_fails_typed_and_daemon_survives() {
    let dir = scratch("enospc-stream");

    // Nothing fits: every append hits the budget immediately.
    let storage = Arc::new(FaultyStorage::new(FaultSpec {
        enospc_after: Some(numa_store::wal::FILE_HEADER_LEN),
        ..FaultSpec::default()
    }));
    let store = ProfileStore::open_durable_config_with(
        &dir,
        StoreConfig::default(),
        PersistOptions {
            snapshot_wal_bytes: u64::MAX,
            fsync: false,
        },
        storage,
    )
    .expect("open durable store over faulty storage");
    let (addr, server) = spawn_server_with_store(ServerConfig::default(), Arc::new(store));

    let mut c = Client::connect(addr).expect("connect");
    let chunks = numa_store::stream::split_profile(&profile(3), 2);
    let session = c.open_session("streamed").expect("open session");

    // Chunk appends are staged durably; with a full disk they must fail
    // typed rather than ack bytes the log never saw.
    let mut failed = false;
    for (seq, chunk) in chunks.iter().enumerate() {
        match c.append_chunk(session.session, seq as u64, &chunk.to_json()) {
            Ok(_) => {}
            Err(ClientError::Server(WireError::NotDurable { .. })) => {
                failed = true;
                break;
            }
            other => panic!("expected Ok or NotDurable, got {other:?}"),
        }
    }
    if !failed {
        match c.seal_session(session.session) {
            Err(ClientError::Server(WireError::NotDurable { .. })) => {}
            other => panic!("expected NotDurable on seal, got {other:?}"),
        }
    }

    // The daemon survives and the store holds nothing.
    let mut c2 = Client::connect(addr).expect("reconnect");
    c2.ping().expect("alive");
    match c2.list() {
        Ok(entries) => assert!(entries.is_empty(), "{entries:?}"),
        Err(ClientError::Server(WireError::EmptyStore)) => {}
        other => panic!("unexpected list result: {other:?}"),
    }

    c2.shutdown().expect("shutdown");
    server.join().expect("join").expect("run ok");
    let _ = std::fs::remove_dir_all(&dir);
}
