//! The `hpcd` wire protocol: length-prefixed JSON frames with a
//! versioned header, shared by the daemon and the client.
//!
//! ## Frame layout (all integers big-endian)
//!
//! ```text
//! offset 0..4    magic      b"HPCD"
//! offset 4..6    version    u16 — protocol revision, see [`PROTOCOL_VERSION`]
//! offset 6..8    flags      u16 — capability bits, see [`caps`]
//! offset 8..12   length     u32 — payload byte count
//! offset 12..    payload    `length` bytes of UTF-8 JSON
//! ```
//!
//! A peer validates the header as soon as its 12 bytes arrive, so an
//! oversized or garbage frame is rejected *before* any payload is
//! buffered. Truncation (EOF inside a frame) is reported distinctly
//! from a clean EOF at a frame boundary.
//!
//! ## Version and capability rules
//!
//! Every frame carries the sender's protocol version. The daemon
//! accepts exactly [`PROTOCOL_VERSION`]; on mismatch it answers with a
//! [`WireError::UnsupportedVersion`] response (framed with its *own*
//! version) and closes the connection.
//!
//! The flags word (the header field that was required-zero before
//! capability bits existed) carries [`caps`] bits. A client sets the
//! capability a request relies on (e.g. [`caps::STREAMING`] on session
//! ops); the daemon answers a request whose bits it does not implement
//! with a typed [`WireError::Unsupported`] — the connection stays
//! usable, unlike the old behavior of hanging up on any non-zero word.
//! Every daemon response frame advertises the full [`caps::SUPPORTED`]
//! set, so one `ping` round trip tells a client what the server can do.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};

/// Current protocol revision.
pub const PROTOCOL_VERSION: u16 = 1;

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"HPCD";

/// Header size in bytes (magic + version + reserved + length).
pub const HEADER_LEN: usize = 12;

/// Default cap on payload size: 4 MiB holds any profile the simulator
/// emits with generous headroom while bounding per-connection memory.
pub const DEFAULT_MAX_FRAME: usize = 4 << 20;

/// Capability bits carried in the frame header's flags word.
///
/// A request frame sets the bits the request relies on; a response
/// frame advertises everything the daemon implements. Unknown bits in a
/// request draw a typed [`WireError::Unsupported`] instead of a closed
/// connection, so a newer client downgrades gracefully against an older
/// daemon.
pub mod caps {
    /// Streaming ingestion sessions: `OpenSession` / `AppendChunk` /
    /// `SealSession` / `AbortSession`.
    pub const STREAMING: u16 = 1 << 0;

    /// Binary columnar profile payloads (`IngestBinary` /
    /// `AppendChunkBinary`): request payloads framed as numa-codec
    /// containers instead of JSON. A client that negotiated this via
    /// `ping` sends codec bytes; one that didn't falls back to JSON and
    /// the daemon serves it unchanged.
    pub const BINARY_CODEC: u16 = 1 << 1;

    /// The `Metrics` op: Prometheus text exposition of every daemon
    /// counter over the wire. A daemon predating the metrics registry
    /// answers the op with a typed `Unsupported` instead of a closed
    /// connection.
    pub const METRICS: u16 = 1 << 2;

    /// Every capability this build implements; response frames carry
    /// this set.
    pub const SUPPORTED: u16 = STREAMING | BINARY_CODEC | METRICS;

    /// Render a capability set for display (`ping` output, errors).
    pub fn render(flags: u16) -> String {
        let mut names = Vec::new();
        if flags & STREAMING != 0 {
            names.push("streaming");
        }
        if flags & BINARY_CODEC != 0 {
            names.push("binary-codec");
        }
        if flags & METRICS != 0 {
            names.push("metrics");
        }
        let unknown = flags & !SUPPORTED;
        if unknown != 0 {
            names.push("unknown");
        }
        if names.is_empty() {
            format!("{flags:#06x} (none)")
        } else {
            format!("{flags:#06x} ({})", names.join(", "))
        }
    }
}

// ---------------------------------------------------------------------------
// Framing errors
// ---------------------------------------------------------------------------

/// Structural frame failures, detected from the header alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Declared payload length exceeds the receiver's cap.
    Oversized { len: usize, max: usize },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:?} (expected {MAGIC:?})"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Failures while pulling a frame off a blocking reader.
#[derive(Debug)]
pub enum RecvError {
    /// Underlying transport error (including read timeouts, surfaced as
    /// `WouldBlock`/`TimedOut`).
    Io(io::Error),
    /// Structurally invalid frame.
    Frame(FrameError),
    /// The stream ended in the middle of a frame.
    TruncatedEof { got: usize },
}

impl RecvError {
    /// Whether this is a read timeout rather than a hard failure.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            RecvError::Io(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "transport error: {e}"),
            RecvError::Frame(e) => write!(f, "frame error: {e}"),
            RecvError::TruncatedEof { got } => {
                write!(f, "connection closed mid-frame after {got} byte(s)")
            }
        }
    }
}

impl std::error::Error for RecvError {}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> Self {
        RecvError::Io(e)
    }
}

impl From<FrameError> for RecvError {
    fn from(e: FrameError) -> Self {
        RecvError::Frame(e)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// One decoded frame: the sender's version and capability flags plus
/// the raw payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    pub version: u16,
    /// Capability bits ([`caps`]). Requests set what they rely on;
    /// responses advertise what the daemon implements.
    pub flags: u16,
    pub payload: Vec<u8>,
}

/// Checked header length for a payload. The wire format stores the
/// length as a `u32`, so anything past `u32::MAX` bytes cannot be
/// framed at all — this is where that is enforced (a plain `as u32`
/// cast would silently truncate and emit a corrupt header).
pub fn frame_len(payload_len: usize) -> Result<u32, FrameError> {
    u32::try_from(payload_len).map_err(|_| FrameError::Oversized {
        len: payload_len,
        max: u32::MAX as usize,
    })
}

/// Serialize a frame with no capability flags. Fails (rather than
/// emitting a corrupt header) when the payload does not fit the `u32`
/// length field.
pub fn encode_frame(version: u16, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    encode_frame_flags(version, 0, payload)
}

/// Serialize a frame carrying capability flags.
pub fn encode_frame_flags(version: u16, flags: u16, payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    let len = frame_len(payload.len())?;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_be_bytes());
    out.extend_from_slice(&flags.to_be_bytes());
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Write one flag-less frame to a blocking writer. See
/// [`write_frame_flags`].
pub fn write_frame(
    w: &mut impl Write,
    version: u16,
    payload: &[u8],
    max: usize,
) -> Result<(), RecvError> {
    write_frame_flags(w, version, 0, payload, max)
}

/// Write one frame to a blocking writer. Refuses payloads above `max`
/// locally so a well-behaved peer never triggers the remote cap; the
/// wire format's own `u32` ceiling applies even when `max` is larger.
pub fn write_frame_flags(
    w: &mut impl Write,
    version: u16,
    flags: u16,
    payload: &[u8],
    max: usize,
) -> Result<(), RecvError> {
    if payload.len() > max {
        return Err(RecvError::Frame(FrameError::Oversized {
            len: payload.len(),
            max,
        }));
    }
    w.write_all(&encode_frame_flags(version, flags, payload)?)?;
    w.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Incremental decoding
// ---------------------------------------------------------------------------

/// Push-style frame parser: feed bytes as they arrive (in arbitrary
/// chunks), pull complete frames out. Survives any split of the byte
/// stream, which is exactly what TCP delivers.
#[derive(Debug)]
pub struct FrameDecoder {
    max_frame: usize,
    buf: Vec<u8>,
    /// Set once a structural error is seen; the stream is unrecoverable
    /// past that point and every later poll repeats the error.
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    pub fn new(max_frame: usize) -> Self {
        FrameDecoder {
            max_frame,
            buf: Vec::new(),
            poisoned: None,
        }
    }

    /// Append newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Try to pull the next complete frame. `Ok(None)` means "need more
    /// bytes"; a structural error poisons the decoder permanently.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = [self.buf[0], self.buf[1], self.buf[2], self.buf[3]];
        if magic != MAGIC {
            return Err(self.poison(FrameError::BadMagic(magic)));
        }
        let version = u16::from_be_bytes([self.buf[4], self.buf[5]]);
        // Capability bits are policy, not framing: unknown bits are the
        // *receiver's* call (the daemon answers with a typed error), so
        // the decoder accepts any flags word.
        let flags = u16::from_be_bytes([self.buf[6], self.buf[7]]);
        let len =
            u32::from_be_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]]) as usize;
        if len > self.max_frame {
            return Err(self.poison(FrameError::Oversized {
                len,
                max: self.max_frame,
            }));
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.buf.drain(..HEADER_LEN + len);
        Ok(Some(Frame {
            version,
            flags,
            payload,
        }))
    }

    fn poison(&mut self, e: FrameError) -> FrameError {
        self.poisoned = Some(e.clone());
        e
    }
}

/// Read exactly one frame from a blocking reader. Returns `Ok(None)` on
/// a clean EOF at a frame boundary; EOF mid-frame is
/// [`RecvError::TruncatedEof`].
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Frame>, RecvError> {
    let mut decoder = FrameDecoder::new(max_frame);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(frame) = decoder.next_frame()? {
            return Ok(Some(frame));
        }
        match r.read(&mut chunk) {
            Ok(0) => {
                return if decoder.pending() == 0 {
                    Ok(None)
                } else {
                    Err(RecvError::TruncatedEof {
                        got: decoder.pending(),
                    })
                };
            }
            Ok(n) => decoder.push(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Output shape for report queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReportFormat {
    Text,
    Json,
}

/// Every operation the daemon serves. Profile references are resolved
/// server-side exactly like `hpcstore-sim --profile`: an id prefix or a
/// label.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Ingest one serialized profile under a label.
    Ingest { label: String, json: String },
    /// List stored profiles.
    List,
    /// Resolve an id prefix or label to a stored profile.
    Resolve { reference: String },
    /// Cross-run aggregate over the whole stored set.
    Aggregate,
    /// Top-n hottest variables across the stored set.
    Top { n: usize },
    /// Per-profile report, text or JSON.
    Report {
        profile: String,
        format: ReportFormat,
    },
    /// Code-centric CCT view; subtrees below `min_share_permille`/1000
    /// of program cost are elided.
    CodeView {
        profile: String,
        min_share_permille: u16,
    },
    /// Address-centric view of one variable.
    AddressView { profile: String, var: String },
    /// Pairwise diff of two stored runs.
    Diff { before: String, after: String },
    /// Store accounting (profile count, dedup, cache counters).
    StoreStats,
    /// Daemon observability: per-op counters + latency percentiles.
    ServerStats,
    /// Prometheus text exposition of every registered metric (requires
    /// [`caps::METRICS`]); the same text `GET /metrics` serves.
    Metrics,
    /// Drop every memoized artifact (admin; used to measure cold paths).
    ClearCache,
    /// Ask the daemon to drain and exit (admin).
    Shutdown,
    /// Open a streaming ingestion session (requires
    /// [`caps::STREAMING`]). The reply carries the session id, the lease
    /// the client must renew by appending, and the buffer limits.
    OpenSession { label: String },
    /// Append chunk `seq` (strictly sequential from 0) to an open
    /// session. `chunk` is a serialized `ChunkPayload`.
    AppendChunk {
        session: u64,
        seq: u64,
        chunk: String,
    },
    /// Seal a session: assemble its chunks and commit the profile
    /// through the ordinary ingest path.
    SealSession { session: u64 },
    /// Abort a session, discarding everything buffered for it.
    AbortSession { session: u64 },
    /// Ingest one binary-codec profile container (requires
    /// [`caps::BINARY_CODEC`]). Travels as a [`BINARY_REQUEST_MAGIC`]
    /// envelope, not JSON.
    IngestBinary { label: String, bytes: Vec<u8> },
    /// Append a binary-codec chunk to an open session (requires
    /// [`caps::STREAMING`] | [`caps::BINARY_CODEC`]). Travels as a
    /// [`BINARY_REQUEST_MAGIC`] envelope, not JSON.
    AppendChunkBinary {
        session: u64,
        seq: u64,
        bytes: Vec<u8>,
    },
}

impl Request {
    /// Stable op name, used for per-op metrics and display.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Ingest { .. } => "ingest",
            Request::List => "list",
            Request::Resolve { .. } => "resolve",
            Request::Aggregate => "aggregate",
            Request::Top { .. } => "top",
            Request::Report { .. } => "report",
            Request::CodeView { .. } => "code-view",
            Request::AddressView { .. } => "address-view",
            Request::Diff { .. } => "diff",
            Request::StoreStats => "store-stats",
            Request::ServerStats => "server-stats",
            Request::Metrics => "metrics",
            Request::ClearCache => "clear-cache",
            Request::Shutdown => "shutdown",
            Request::OpenSession { .. } => "open-session",
            Request::AppendChunk { .. } => "append-chunk",
            Request::SealSession { .. } => "seal-session",
            Request::AbortSession { .. } => "abort-session",
            Request::IngestBinary { .. } => "ingest-binary",
            Request::AppendChunkBinary { .. } => "append-chunk-binary",
        }
    }

    /// The capability bits this request relies on; the client stamps
    /// them on the request frame, and the daemon rejects a streaming op
    /// whose frame failed to declare [`caps::STREAMING`].
    pub fn required_caps(&self) -> u16 {
        match self {
            Request::OpenSession { .. }
            | Request::AppendChunk { .. }
            | Request::SealSession { .. }
            | Request::AbortSession { .. } => caps::STREAMING,
            Request::IngestBinary { .. } => caps::BINARY_CODEC,
            Request::AppendChunkBinary { .. } => caps::STREAMING | caps::BINARY_CODEC,
            Request::Metrics => caps::METRICS,
            _ => 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One row of a `List` response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// Hex content id.
    pub id: String,
    pub label: String,
    pub threads: usize,
    pub json_bytes: usize,
}

/// Per-op counter row in a `ServerStats` response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpStat {
    pub op: String,
    pub requests: u64,
    pub errors: u64,
}

/// Latency summary from the daemon's fixed-bucket histogram.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    pub count: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

/// One store shard's accounting row in a `ServerStats` response.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStatRow {
    pub shard: usize,
    pub profiles: usize,
    pub ingests: u64,
    /// Shelf read-lock acquisitions that had to block.
    pub read_contended: u64,
    /// Shelf write-lock acquisitions that had to block.
    pub write_contended: u64,
}

/// One retained slow-op span in a `ServerStats` response: a request
/// whose total service time crossed the daemon's `--slow-op-ms`
/// threshold, with the structured facts its trace collected.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SlowOpRow {
    /// Trace sequence number (strictly monotonic per daemon).
    pub seq: u64,
    pub op: String,
    /// Request payload size in bytes.
    pub bytes: u64,
    /// Store shard the request touched, if any.
    pub shard: Option<u32>,
    /// Memo-cache outcome, if the request consulted the cache.
    pub cache_hit: Option<bool>,
    /// Microseconds spent blocked on the WAL ack, if the request
    /// staged data.
    pub wal_ack_us: Option<u64>,
    /// End-to-end service time in microseconds.
    pub total_us: u64,
    /// Whether the request drew a typed error.
    pub error: bool,
}

/// The `server-stats` payload: request observability plus the store's
/// cache counters, one round trip.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServerStatsReport {
    pub uptime_ms: u64,
    pub connections_accepted: u64,
    pub connections_closed: u64,
    pub requests_total: u64,
    pub errors_total: u64,
    pub rejected_oversized: u64,
    pub malformed_frames: u64,
    pub timeouts: u64,
    pub per_op: Vec<OpStat>,
    pub latency: LatencySummary,
    pub store_profiles: usize,
    /// Hex content hash of the stored set — two daemons (or a daemon
    /// before and after a crash-restart) holding the same corpus report
    /// the same value.
    pub store_set_hash: String,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_insertions: u64,
    pub cache_evictions: u64,
    /// Whether the store is backed by a `--data-dir`.
    pub durable: bool,
    /// Startup recovery: records loaded from the snapshot.
    pub snapshot_records_loaded: u64,
    /// Startup recovery: records replayed from the WAL.
    pub wal_records_replayed: u64,
    /// Startup recovery: torn/corrupt tail bytes dropped (WAL +
    /// snapshot).
    pub wal_truncated_bytes: u64,
    /// Records appended to the WAL since startup.
    pub wal_appends: u64,
    /// Group commits since startup: WAL flushes that made a batch of
    /// appends durable. `wal_appends / wal_group_commits` is the
    /// achieved batching factor. Defaults to zero when talking to a
    /// daemon predating group commit.
    #[serde(default)]
    pub wal_group_commits: u64,
    /// Snapshot compactions since startup.
    pub snapshots_written: u64,
    /// Persistence I/O failures since startup (serving continued from
    /// memory).
    pub persist_io_errors: u64,
    /// Per-shard store accounting (empty when talking to a daemon
    /// predating the sharded store).
    #[serde(default)]
    pub store_shards: Vec<ShardStatRow>,
    /// Streaming sessions open right now.
    #[serde(default)]
    pub live_sessions: u64,
    /// Bytes buffered across all open streaming sessions.
    #[serde(default)]
    pub live_open_bytes: u64,
    /// Sessions opened since startup.
    #[serde(default)]
    pub live_sessions_opened: u64,
    /// Sessions sealed (committed) since startup.
    #[serde(default)]
    pub live_sessions_sealed: u64,
    /// Sessions aborted (client abort or failed seal) since startup.
    #[serde(default)]
    pub live_sessions_aborted: u64,
    /// Expired leases reclaimed by the janitor since startup.
    #[serde(default)]
    pub live_leases_reaped: u64,
    /// Chunks accepted since startup.
    #[serde(default)]
    pub live_chunks_appended: u64,
    /// Capacity-induced rejections (too many sessions, buffer budgets)
    /// since startup.
    #[serde(default)]
    pub live_backpressure: u64,
    /// Startup recovery: sealed sessions reassembled from WAL chunk
    /// records.
    #[serde(default)]
    pub sessions_recovered: u64,
    /// Startup recovery: unsealed or unassemblable sessions dropped.
    #[serde(default)]
    pub sessions_dropped: u64,
    /// Startup recovery: chunk records replayed from the WAL.
    #[serde(default)]
    pub session_chunks_replayed: u64,
    /// Recent requests that crossed the slow-op threshold, oldest
    /// first (empty when talking to a daemon predating tracing).
    #[serde(default)]
    pub recent_slow_ops: Vec<SlowOpRow>,
}

impl ServerStatsReport {
    pub fn render(&self) -> String {
        let mut out = format!(
            "uptime: {:.1} s\n\
             connections: {} accepted, {} closed\n\
             requests: {} total, {} error(s)\n\
             frames: {} oversized rejected, {} malformed, {} timeout(s)\n\
             latency: p50 {} µs, p95 {} µs, p99 {} µs, max {} µs over {} request(s)\n\
             store: {} profile(s), set hash {}; cache {} hit(s), {} miss(es), {} insertion(s), {} eviction(s)\n",
            self.uptime_ms as f64 / 1e3,
            self.connections_accepted,
            self.connections_closed,
            self.requests_total,
            self.errors_total,
            self.rejected_oversized,
            self.malformed_frames,
            self.timeouts,
            self.latency.p50_us,
            self.latency.p95_us,
            self.latency.p99_us,
            self.latency.max_us,
            self.latency.count,
            self.store_profiles,
            self.store_set_hash,
            self.cache_hits,
            self.cache_misses,
            self.cache_insertions,
            self.cache_evictions,
        );
        out.push_str(&format!(
            "live: {} session(s) open holding {} byte(s); {} opened, {} sealed, {} aborted, \
             {} lease(s) reaped, {} chunk(s) appended, {} backpressure rejection(s)\n",
            self.live_sessions,
            self.live_open_bytes,
            self.live_sessions_opened,
            self.live_sessions_sealed,
            self.live_sessions_aborted,
            self.live_leases_reaped,
            self.live_chunks_appended,
            self.live_backpressure,
        ));
        if self.durable {
            out.push_str(&format!(
                "persistence: recovered {} snapshot + {} wal record(s), {} truncated byte(s); \
                 {} append(s) in {} group commit(s), {} snapshot(s) written, {} io error(s)\n",
                self.snapshot_records_loaded,
                self.wal_records_replayed,
                self.wal_truncated_bytes,
                self.wal_appends,
                self.wal_group_commits,
                self.snapshots_written,
                self.persist_io_errors,
            ));
            out.push_str(&format!(
                "sessions: {} recovered, {} dropped, {} chunk record(s) replayed\n",
                self.sessions_recovered, self.sessions_dropped, self.session_chunks_replayed,
            ));
        } else {
            out.push_str("persistence: off (in-memory store)\n");
        }
        for s in &self.store_shards {
            out.push_str(&format!(
                "  shard {:>2}: {} profile(s), {} ingest(s), \
                 {} contended read(s), {} contended write(s)\n",
                s.shard, s.profiles, s.ingests, s.read_contended, s.write_contended,
            ));
        }
        for op in &self.per_op {
            out.push_str(&format!(
                "  op {:<14} {:>8} request(s) {:>6} error(s)\n",
                op.op, op.requests, op.errors
            ));
        }
        if !self.recent_slow_ops.is_empty() {
            out.push_str("recent slow ops:\n");
            for s in &self.recent_slow_ops {
                out.push_str(&format!(
                    "  #{} {:<14} {:>8} µs, {} byte(s){}{}{}{}\n",
                    s.seq,
                    s.op,
                    s.total_us,
                    s.bytes,
                    match s.shard {
                        Some(sh) => format!(", shard {sh}"),
                        None => String::new(),
                    },
                    match s.cache_hit {
                        Some(true) => ", cache hit",
                        Some(false) => ", cache miss",
                        None => "",
                    },
                    match s.wal_ack_us {
                        Some(us) => format!(", wal ack {us} µs"),
                        None => String::new(),
                    },
                    if s.error { ", error" } else { "" },
                ));
            }
        }
        out
    }
}

/// Typed error taxonomy every failure maps into. The connection stays
/// usable after a request-level error; frame-level errors
/// ([`WireError::Malformed`], [`WireError::Oversized`],
/// [`WireError::UnsupportedVersion`]) close it, since the byte stream
/// can no longer be trusted.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireError {
    /// Payload was not valid UTF-8 JSON for a known request.
    Malformed { detail: String },
    /// Frame payload exceeded the daemon's cap.
    Oversized { len: usize, max: usize },
    /// Client spoke a protocol revision the daemon does not serve.
    UnsupportedVersion { got: u16, supported: u16 },
    /// A profile reference matched nothing in the store.
    UnknownProfile { reference: String },
    /// A profile reference matched more than one stored profile.
    /// Candidates are rendered `"{id}  {label}"` rows so a client can
    /// show the user what to disambiguate between.
    AmbiguousReference {
        reference: String,
        candidates: Vec<String>,
    },
    /// The profile never recorded that variable.
    UnknownVariable { name: String },
    /// A set-level query hit an empty store.
    EmptyStore,
    /// An ingested payload was not a valid profile.
    ProfileParse { label: String, message: String },
    /// The daemon failed internally (a bug, not a client error).
    Internal { detail: String },
    /// The request relies on capability bits the daemon does not
    /// implement (or a streaming op arrived without declaring
    /// [`caps::STREAMING`]). The connection stays usable.
    Unsupported { feature: u16, supported: u16 },
    /// No such open session (never opened, already sealed or aborted,
    /// or lease-expired and reaped).
    UnknownSession { session: u64 },
    /// Chunks must arrive strictly in sequence, exactly once.
    BadChunkSequence {
        session: u64,
        got: u64,
        expected: u64,
    },
    /// One chunk exceeded the daemon's per-chunk limit.
    ChunkTooLarge { session: u64, len: u64, max: u64 },
    /// The session (or daemon-wide) buffer budget is exhausted; retry
    /// later or fall back to one-shot ingestion.
    SessionBufferFull { session: u64, bytes: u64, max: u64 },
    /// The daemon cannot take more streaming work right now (too many
    /// sessions or global backpressure); retry later.
    Busy { detail: String },
    /// A chunk payload did not parse.
    ChunkParse {
        session: u64,
        seq: u64,
        message: String,
    },
    /// A sealed chunk set did not assemble into a profile; the session
    /// was discarded.
    SessionIncomplete { session: u64, detail: String },
    /// The daemon could not make the operation durable (WAL append or
    /// commit failed — full disk, I/O error). The operation was rolled
    /// back, **not** applied: an ingest can be retried as-is; a chunk
    /// append can be retried at the same sequence number; a failed seal
    /// discards the session, which must be re-streamed. The daemon
    /// keeps serving reads, and the connection stays usable.
    NotDurable { detail: String },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Malformed { detail } => write!(f, "malformed request: {detail}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the server cap of {max}")
            }
            WireError::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "protocol version {got} unsupported (server speaks {supported})"
                )
            }
            WireError::UnknownProfile { reference } => {
                write!(f, "{reference:?} matches no stored profile")
            }
            WireError::AmbiguousReference {
                reference,
                candidates,
            } => {
                write!(
                    f,
                    "{reference:?} is ambiguous: {} profiles match",
                    candidates.len()
                )?;
                for row in candidates.iter().take(8) {
                    write!(f, "\n  {row}")?;
                }
                if candidates.len() > 8 {
                    write!(f, "\n  ... and {} more", candidates.len() - 8)?;
                }
                Ok(())
            }
            WireError::UnknownVariable { name } => {
                write!(f, "variable {name:?} not present in the profile")
            }
            WireError::EmptyStore => write!(f, "the store holds no profiles"),
            WireError::ProfileParse { label, message } => {
                write!(f, "cannot parse profile {label:?}: {message}")
            }
            WireError::Internal { detail } => write!(f, "internal server error: {detail}"),
            WireError::Unsupported { feature, supported } => write!(
                f,
                "capability {} not supported (server implements {})",
                caps::render(*feature),
                caps::render(*supported)
            ),
            WireError::UnknownSession { session } => {
                write!(
                    f,
                    "no open session {session:#x} (sealed, aborted, or lease expired)"
                )
            }
            WireError::BadChunkSequence {
                session,
                got,
                expected,
            } => write!(
                f,
                "session {session:#x}: chunk seq {got} out of order (expected {expected})"
            ),
            WireError::ChunkTooLarge { session, len, max } => write!(
                f,
                "session {session:#x}: chunk of {len} bytes exceeds the {max}-byte limit"
            ),
            WireError::SessionBufferFull {
                session,
                bytes,
                max,
            } => write!(
                f,
                "session {session:#x}: buffer would reach {bytes} bytes (limit {max})"
            ),
            WireError::Busy { detail } => write!(f, "daemon busy: {detail}"),
            WireError::ChunkParse {
                session,
                seq,
                message,
            } => write!(
                f,
                "session {session:#x}: chunk {seq} does not parse: {message}"
            ),
            WireError::SessionIncomplete { session, detail } => {
                write!(f, "session {session:#x} does not assemble: {detail}")
            }
            WireError::NotDurable { detail } => {
                write!(f, "operation not durable (rolled back): {detail}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Every reply the daemon sends.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    Pong,
    Ingested {
        id: String,
        added: bool,
    },
    Profiles(Vec<ProfileEntry>),
    Resolved {
        id: String,
        label: String,
    },
    /// Rendered artifact text (aggregate, top, report, views, diff,
    /// store-stats).
    Text(String),
    /// Boxed: the report (per-op rows + per-shard rows) dwarfs every
    /// other variant, and `Response` values move through channels.
    ServerStats(Box<ServerStatsReport>),
    CacheCleared,
    ShuttingDown,
    /// A streaming session is open; stream chunks under this id and
    /// within these limits, appending at least once per `lease_ms`.
    SessionOpened {
        session: u64,
        lease_ms: u64,
        max_chunk_bytes: u64,
        max_session_bytes: u64,
    },
    /// Chunk accepted (and, on a durable store, staged in the WAL).
    /// `open_bytes` is the daemon-wide buffered total after the append.
    ChunkAppended {
        session: u64,
        seq: u64,
        open_bytes: u64,
    },
    /// The session assembled and committed. `added` is false when the
    /// identical profile was already stored (content-addressed dedup).
    SessionSealed {
        id: String,
        added: bool,
        chunks: u64,
    },
    SessionAborted {
        session: u64,
    },
    Error(WireError),
}

// ---------------------------------------------------------------------------
// Payload helpers (JSON requests + the binary request envelope)
// ---------------------------------------------------------------------------

/// Magic opening a binary request payload. JSON payloads cannot start
/// with these bytes (`N` opens no JSON value), so the two request
/// encodings are disjoint and a receiver dispatches on the first four
/// bytes alone.
pub const BINARY_REQUEST_MAGIC: [u8; 4] = *b"NBRQ";

const BINOP_INGEST: u8 = 0;
const BINOP_APPEND_CHUNK: u8 = 1;

/// Binary envelope layout (all integers big-endian):
///
/// ```text
/// offset 0..4  magic   b"NBRQ"
/// offset 4     opcode  0 = IngestBinary, 1 = AppendChunkBinary
///
/// opcode 0:  u32 label_len, label bytes, codec bytes (rest)
/// opcode 1:  u64 session, u64 seq, chunk bytes (rest)
/// ```
fn encode_binary_request(req: &Request) -> Option<Vec<u8>> {
    match req {
        Request::IngestBinary { label, bytes } => {
            let mut out = Vec::with_capacity(9 + label.len() + bytes.len());
            out.extend_from_slice(&BINARY_REQUEST_MAGIC);
            out.push(BINOP_INGEST);
            out.extend_from_slice(&(label.len() as u32).to_be_bytes());
            out.extend_from_slice(label.as_bytes());
            out.extend_from_slice(bytes);
            Some(out)
        }
        Request::AppendChunkBinary {
            session,
            seq,
            bytes,
        } => {
            let mut out = Vec::with_capacity(21 + bytes.len());
            out.extend_from_slice(&BINARY_REQUEST_MAGIC);
            out.push(BINOP_APPEND_CHUNK);
            out.extend_from_slice(&session.to_be_bytes());
            out.extend_from_slice(&seq.to_be_bytes());
            out.extend_from_slice(bytes);
            Some(out)
        }
        _ => None,
    }
}

fn decode_binary_request(payload: &[u8]) -> Result<Request, WireError> {
    let malformed = |detail: &str| WireError::Malformed {
        detail: detail.to_string(),
    };
    let body = &payload[BINARY_REQUEST_MAGIC.len()..];
    let (&opcode, body) = body
        .split_first()
        .ok_or_else(|| malformed("binary request truncated before opcode"))?;
    match opcode {
        BINOP_INGEST => {
            if body.len() < 4 {
                return Err(malformed("binary ingest truncated before label length"));
            }
            let label_len = u32::from_be_bytes(body[..4].try_into().unwrap()) as usize;
            if body.len() < 4 + label_len {
                return Err(malformed("binary ingest label exceeds payload"));
            }
            let label = std::str::from_utf8(&body[4..4 + label_len])
                .map_err(|_| malformed("binary ingest label is not UTF-8"))?
                .to_string();
            Ok(Request::IngestBinary {
                label,
                bytes: body[4 + label_len..].to_vec(),
            })
        }
        BINOP_APPEND_CHUNK => {
            if body.len() < 16 {
                return Err(malformed("binary chunk append truncated before header"));
            }
            let session = u64::from_be_bytes(body[..8].try_into().unwrap());
            let seq = u64::from_be_bytes(body[8..16].try_into().unwrap());
            Ok(Request::AppendChunkBinary {
                session,
                seq,
                bytes: body[16..].to_vec(),
            })
        }
        other => Err(WireError::Malformed {
            detail: format!("unknown binary request opcode {other}"),
        }),
    }
}

/// Decode a frame payload into a request: the binary envelope when it
/// opens with [`BINARY_REQUEST_MAGIC`], UTF-8 JSON otherwise.
/// Distinguishes "not UTF-8" from "not a request" in the error detail.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    if payload.starts_with(&BINARY_REQUEST_MAGIC) {
        return decode_binary_request(payload);
    }
    let text = std::str::from_utf8(payload).map_err(|e| WireError::Malformed {
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| WireError::Malformed {
        detail: e.to_string(),
    })
}

/// Encode a request as a frame payload. Binary-codec requests take the
/// [`BINARY_REQUEST_MAGIC`] envelope; everything else is JSON.
pub fn encode_request(req: &Request) -> Vec<u8> {
    if let Some(bin) = encode_binary_request(req) {
        return bin;
    }
    serde_json::to_string(req)
        .expect("requests always serialize")
        .into_bytes()
}

/// Encode a response as a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    serde_json::to_string(resp)
        .expect("responses always serialize")
        .into_bytes()
}

/// Decode a frame payload into a response.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let text = std::str::from_utf8(payload).map_err(|e| WireError::Malformed {
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| WireError::Malformed {
        detail: e.to_string(),
    })
}
