//! Request observability for the daemon: per-op counters and a
//! fixed-bucket latency histogram, all homed on `numa-obs` handles.
//!
//! The hot path (one request) touches exactly three relaxed atomics:
//! op requests, the histogram bucket, and optionally op errors. The
//! same handles feed both `server-stats` (via [`Metrics::latency_summary`]
//! and [`Metrics::per_op`]) and the Prometheus scrape (via
//! [`Metrics::register`]) — one storage location per number.

use crate::protocol::{LatencySummary, OpStat, Request};
use numa_obs::{Counter, Histogram, Registry};

/// Every op the daemon serves, densely numbered for counter arrays.
/// Slot [`OpSlot::COUNT`]`-1` ("unknown") absorbs malformed requests
/// that never decoded to an op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpSlot(usize);

impl OpSlot {
    pub const NAMES: [&'static str; 22] = [
        "ping",
        "ingest",
        "ingest-binary",
        "list",
        "resolve",
        "aggregate",
        "top",
        "report",
        "code-view",
        "address-view",
        "diff",
        "store-stats",
        "server-stats",
        "metrics",
        "clear-cache",
        "shutdown",
        "open-session",
        "append-chunk",
        "append-chunk-binary",
        "seal-session",
        "abort-session",
        "unknown",
    ];
    pub const COUNT: usize = Self::NAMES.len();
    pub const UNKNOWN: OpSlot = OpSlot(Self::COUNT - 1);

    pub fn of(req: &Request) -> OpSlot {
        let name = req.op_name();
        OpSlot(
            Self::NAMES
                .iter()
                .position(|n| *n == name)
                .unwrap_or(Self::COUNT - 1),
        )
    }

    pub fn name(&self) -> &'static str {
        Self::NAMES[self.0]
    }
}

/// All daemon counters, shared by workers via `Arc`.
#[derive(Default)]
pub struct Metrics {
    requests: [Counter; OpSlot::COUNT],
    errors: [Counter; OpSlot::COUNT],
    pub latency: Histogram,
    connections_accepted: Counter,
    connections_closed: Counter,
    rejected_oversized: Counter,
    malformed_frames: Counter,
    timeouts: Counter,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_request(&self, op: OpSlot, elapsed: std::time::Duration, is_error: bool) {
        self.requests[op.0].inc();
        if is_error {
            self.errors[op.0].inc();
        }
        self.latency.record_duration(elapsed);
    }

    pub fn connection_accepted(&self) {
        self.connections_accepted.inc();
    }

    pub fn connection_closed(&self) {
        self.connections_closed.inc();
    }

    pub fn rejected_oversized(&self) {
        self.rejected_oversized.inc();
    }

    pub fn malformed_frame(&self) {
        self.malformed_frames.inc();
    }

    pub fn timeout(&self) {
        self.timeouts.inc();
    }

    pub fn requests_total(&self) -> u64 {
        self.requests.iter().map(Counter::get).sum()
    }

    pub fn errors_total(&self) -> u64 {
        self.errors.iter().map(Counter::get).sum()
    }

    pub fn connections_accepted_total(&self) -> u64 {
        self.connections_accepted.get()
    }

    pub fn connections_closed_total(&self) -> u64 {
        self.connections_closed.get()
    }

    pub fn rejected_oversized_total(&self) -> u64 {
        self.rejected_oversized.get()
    }

    pub fn malformed_total(&self) -> u64 {
        self.malformed_frames.get()
    }

    pub fn timeouts_total(&self) -> u64 {
        self.timeouts.get()
    }

    /// One consistent latency summary: every percentile line comes
    /// from the same bucket snapshot, so p50 ≤ p95 ≤ p99 holds even
    /// while workers are recording.
    pub fn latency_summary(&self) -> LatencySummary {
        let s = self.latency.snapshot();
        LatencySummary {
            count: s.count,
            p50_us: s.percentile(0.50),
            p95_us: s.percentile(0.95),
            p99_us: s.percentile(0.99),
            max_us: s.max,
        }
    }

    /// Per-op rows for ops that saw at least one request.
    pub fn per_op(&self) -> Vec<OpStat> {
        (0..OpSlot::COUNT)
            .filter_map(|i| {
                let requests = self.requests[i].get();
                if requests == 0 {
                    return None;
                }
                Some(OpStat {
                    op: OpSlot::NAMES[i].to_string(),
                    requests,
                    errors: self.errors[i].get(),
                })
            })
            .collect()
    }

    /// Adopt every counter into `registry` under the `numa_server_`
    /// prefix (clones of the same handles the hot path increments).
    pub fn register(&self, registry: &Registry) {
        for (i, name) in OpSlot::NAMES.iter().enumerate() {
            registry.counter(
                "numa_server_requests_total",
                "Requests served, by op.",
                &[("op", name)],
                self.requests[i].clone(),
            );
            registry.counter(
                "numa_server_errors_total",
                "Requests answered with a typed error, by op.",
                &[("op", name)],
                self.errors[i].clone(),
            );
        }
        registry.histogram(
            "numa_server_request_latency_us",
            "End-to-end request service time in microseconds.",
            self.latency.clone(),
        );
        registry.counter(
            "numa_server_connections_accepted_total",
            "TCP connections accepted.",
            &[],
            self.connections_accepted.clone(),
        );
        registry.counter(
            "numa_server_connections_closed_total",
            "TCP connections closed.",
            &[],
            self.connections_closed.clone(),
        );
        registry.counter(
            "numa_server_rejected_oversized_total",
            "Frames rejected for exceeding the size cap.",
            &[],
            self.rejected_oversized.clone(),
        );
        registry.counter(
            "numa_server_malformed_frames_total",
            "Frames that failed to decode.",
            &[],
            self.malformed_frames.clone(),
        );
        registry.counter(
            "numa_server_timeouts_total",
            "Connections dropped on read timeout.",
            &[],
            self.timeouts.clone(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_obs::Histogram;
    use std::time::Duration;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = Histogram::new();
        for us in [1u64, 10, 100, 1000, 10_000] {
            for _ in 0..20 {
                h.record_duration(Duration::from_micros(us));
            }
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let p50 = s.percentile(0.50);
        // The median sample is 100 µs; its bucket's upper bound is 128.
        assert!((100..=128).contains(&p50), "p50 = {p50}");
        let p99 = s.percentile(0.99);
        assert!(p99 >= 10_000, "p99 = {p99}");
        assert_eq!(s.max, 10_000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = Metrics::new().latency_summary();
        assert_eq!((s.count, s.p50_us, s.p99_us, s.max_us), (0, 0, 0, 0));
    }

    #[test]
    fn op_slots_cover_every_request() {
        use crate::protocol::Request;
        let reqs = [
            Request::Ping,
            Request::List,
            Request::Aggregate,
            Request::StoreStats,
            Request::ServerStats,
            Request::Metrics,
            Request::ClearCache,
            Request::Shutdown,
        ];
        for r in &reqs {
            assert_ne!(OpSlot::of(r), OpSlot::UNKNOWN, "{:?}", r.op_name());
        }
    }

    #[test]
    fn registered_counters_share_storage_with_the_hot_path() {
        let m = Metrics::new();
        let registry = Registry::new();
        m.register(&registry);
        m.record_request(OpSlot::of(&Request::Ping), Duration::from_micros(5), false);
        m.record_request(OpSlot::of(&Request::Ping), Duration::from_micros(7), true);
        let text = registry.render();
        assert!(
            text.contains("numa_server_requests_total{op=\"ping\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("numa_server_errors_total{op=\"ping\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("numa_server_request_latency_us_count 2\n"),
            "{text}"
        );
    }
}
