//! Request observability for the daemon: lock-free per-op counters and
//! a fixed-bucket latency histogram.
//!
//! Everything here is `AtomicU64` with relaxed ordering — the counters
//! are statistics, not synchronization, and the hot path (one request)
//! touches exactly three atomics: op requests, the histogram bucket,
//! and optionally op errors.

use crate::protocol::{LatencySummary, OpStat, Request};
use std::sync::atomic::{AtomicU64, Ordering};

/// Every op the daemon serves, densely numbered for counter arrays.
/// Slot [`OpSlot::COUNT`]`-1` ("unknown") absorbs malformed requests
/// that never decoded to an op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpSlot(usize);

impl OpSlot {
    pub const NAMES: [&'static str; 21] = [
        "ping",
        "ingest",
        "ingest-binary",
        "list",
        "resolve",
        "aggregate",
        "top",
        "report",
        "code-view",
        "address-view",
        "diff",
        "store-stats",
        "server-stats",
        "clear-cache",
        "shutdown",
        "open-session",
        "append-chunk",
        "append-chunk-binary",
        "seal-session",
        "abort-session",
        "unknown",
    ];
    pub const COUNT: usize = Self::NAMES.len();
    pub const UNKNOWN: OpSlot = OpSlot(Self::COUNT - 1);

    pub fn of(req: &Request) -> OpSlot {
        let name = req.op_name();
        OpSlot(
            Self::NAMES
                .iter()
                .position(|n| *n == name)
                .unwrap_or(Self::COUNT - 1),
        )
    }

    pub fn name(&self) -> &'static str {
        Self::NAMES[self.0]
    }
}

/// Power-of-two latency buckets in microseconds: bucket `i` holds
/// samples in `[2^i, 2^(i+1))` µs, bucket 0 holds `< 2` µs, the last
/// bucket is an overflow catch-all (≥ ~67 s never happens in practice).
const BUCKETS: usize = 27;

/// Fixed-bucket histogram. Percentiles are upper bounds of the bucket
/// where the cumulative count crosses the rank — at most 2× off, which
/// is plenty for p50/p95/p99 tail reporting.
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&self, elapsed: std::time::Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the p-th percentile (0 < p ≤ 1), in µs.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i, capped by the observed max.
                let bound = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                return bound.min(self.max_us.load(Ordering::Relaxed));
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            p50_us: self.percentile_us(0.50),
            p95_us: self.percentile_us(0.95),
            p99_us: self.percentile_us(0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// All daemon counters, shared by workers via `Arc`.
#[derive(Default)]
pub struct Metrics {
    requests: [AtomicU64; OpSlot::COUNT],
    errors: [AtomicU64; OpSlot::COUNT],
    pub latency: LatencyHistogram,
    connections_accepted: AtomicU64,
    connections_closed: AtomicU64,
    rejected_oversized: AtomicU64,
    malformed_frames: AtomicU64,
    timeouts: AtomicU64,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_request(&self, op: OpSlot, elapsed: std::time::Duration, is_error: bool) {
        self.requests[op.0].fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors[op.0].fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(elapsed);
    }

    pub fn connection_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub fn connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn rejected_oversized(&self) {
        self.rejected_oversized.fetch_add(1, Ordering::Relaxed);
    }

    pub fn malformed_frame(&self) {
        self.malformed_frames.fetch_add(1, Ordering::Relaxed);
    }

    pub fn timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn requests_total(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    pub fn errors_total(&self) -> u64 {
        self.errors.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    pub fn connections_accepted_total(&self) -> u64 {
        self.connections_accepted.load(Ordering::Relaxed)
    }

    pub fn connections_closed_total(&self) -> u64 {
        self.connections_closed.load(Ordering::Relaxed)
    }

    pub fn rejected_oversized_total(&self) -> u64 {
        self.rejected_oversized.load(Ordering::Relaxed)
    }

    pub fn malformed_total(&self) -> u64 {
        self.malformed_frames.load(Ordering::Relaxed)
    }

    pub fn timeouts_total(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Per-op rows for ops that saw at least one request.
    pub fn per_op(&self) -> Vec<OpStat> {
        (0..OpSlot::COUNT)
            .filter_map(|i| {
                let requests = self.requests[i].load(Ordering::Relaxed);
                if requests == 0 {
                    return None;
                }
                Some(OpStat {
                    op: OpSlot::NAMES[i].to_string(),
                    requests,
                    errors: self.errors[i].load(Ordering::Relaxed),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let h = LatencyHistogram::new();
        for us in [1u64, 10, 100, 1000, 10_000] {
            for _ in 0..20 {
                h.record(Duration::from_micros(us));
            }
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile_us(0.50);
        // The median sample is 100 µs; its bucket's upper bound is 128.
        assert!((100..=128).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile_us(0.99);
        assert!(p99 >= 10_000, "p99 = {p99}");
        assert_eq!(h.summary().max_us, 10_000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        let s = h.summary();
        assert_eq!((s.count, s.p50_us, s.p99_us, s.max_us), (0, 0, 0, 0));
    }

    #[test]
    fn op_slots_cover_every_request() {
        use crate::protocol::Request;
        let reqs = [
            Request::Ping,
            Request::List,
            Request::Aggregate,
            Request::StoreStats,
            Request::ServerStats,
            Request::ClearCache,
            Request::Shutdown,
        ];
        for r in &reqs {
            assert_ne!(OpSlot::of(r), OpSlot::UNKNOWN, "{:?}", r.op_name());
        }
    }
}
