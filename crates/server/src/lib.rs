//! The serving layer over the multi-profile store: a framed wire
//! protocol, a concurrent TCP daemon, a blocking client, and request
//! observability.
//!
//! The PPoPP'14 workflow up to PR 1 is batch-only: every front end is a
//! one-shot CLI over an in-process [`numa_store::ProfileStore`]. This
//! crate turns the store into a *service*, the way NUMAscope pairs a
//! long-running collection daemon with a live query surface:
//!
//! * [`protocol`] — length-prefixed JSON frames with a versioned
//!   header, a strict frame-size cap, and a typed error taxonomy
//!   ([`protocol::WireError`]). The codec is push-based
//!   ([`protocol::FrameDecoder`]) so it survives arbitrary TCP
//!   fragmentation.
//! * [`server`] — `hpcd-sim`'s engine: accept loop + bounded
//!   connection queue + worker-thread pool (the offline build has no
//!   async runtime; threads and channels are the concurrency model),
//!   per-connection timeouts, and drain-on-shutdown.
//! * [`client`] — a blocking [`client::Client`] used by `hpcd-client`
//!   and the tests/benches; one typed method per daemon op, plus
//!   streaming-session verbs and [`client::Client::stream_profile`].
//!
//! Streaming ingestion (the `numa-live` crate's sessions) rides the
//! same frame format: the header's flags word carries capability bits
//! ([`protocol::caps`]), session ops are ordinary request/response
//! round trips, and a daemon that predates streaming answers them with
//! a typed [`protocol::WireError::Unsupported`] instead of hanging up.
//! * [`metrics`] — per-op request/error counters and a fixed-bucket
//!   latency histogram, surfaced remotely via the `server-stats` op.
//!
//! The CLI front ends (`hpcd-sim`, `hpcd-client`) live in the
//! `numa-tools` crate next to the other `hpc*-sim` binaries.

pub mod client;
pub mod http;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, SessionInfo};
pub use numa_live::LiveConfig;
pub use protocol::{
    caps, FrameDecoder, FrameError, ProfileEntry, RecvError, ReportFormat, Request, Response,
    ServerStatsReport, SlowOpRow, WireError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig, ShutdownHandle};
