//! The daemon: a multi-threaded TCP server over a shared
//! [`ProfileStore`].
//!
//! ## Threading model
//!
//! One accept loop + a fixed pool of worker threads. Accepted
//! connections flow through a bounded queue (`std::sync::mpsc::
//! sync_channel`); when every worker is busy and the queue is full the
//! accept loop stops pulling connections off the listener, so
//! backpressure lands in the kernel backlog instead of unbounded
//! daemon memory. Each worker owns one connection at a time and serves
//! its requests sequentially (frame in → execute → frame out), so
//! per-connection ordering is trivial; cross-connection concurrency
//! comes from the pool, and thread safety from the store's own locks.
//!
//! ## Shutdown
//!
//! A shared [`AtomicBool`] flag (set by [`ShutdownHandle::shutdown`] or
//! a client's `Shutdown` request) makes the accept loop stop, closes
//! the queue, and puts workers into *drain* mode: each worker finishes
//! the request it is executing, answers any request already in flight
//! on its connection (bounded by a short drain timeout), then closes.
//! `run` joins every worker before returning, so when it returns no
//! request is left unanswered.

use crate::http;
use crate::metrics::{Metrics, OpSlot};
use crate::protocol::{
    caps, decode_request, encode_response, read_frame, write_frame_flags, FrameError, ProfileEntry,
    RecvError, ReportFormat, Request, Response, ServerStatsReport, ShardStatRow, SlowOpRow,
    WireError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use numa_live::{LiveConfig, SessionError, SessionManager};
use numa_obs::trace::{Span, SpanBody};
use numa_obs::{trace, Registry, SpanRing};
use numa_store::{ProfileStore, Query, StoreError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads; also the number of connections served
    /// concurrently.
    pub workers: usize,
    /// Accepted-but-unserved connections the daemon will hold before
    /// the accept loop applies backpressure.
    pub max_pending_connections: usize,
    /// Payload-size cap enforced on every received frame.
    pub max_frame: usize,
    /// Per-connection socket read timeout (idle clients are dropped).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// How long a draining worker waits for one last in-flight request
    /// before closing the connection.
    pub drain_timeout: Duration,
    /// Streaming-session limits (lease, buffer budgets, janitor
    /// cadence).
    pub live: LiveConfig,
    /// Where to serve `GET /metrics` (Prometheus text exposition);
    /// `None` disables the embedded HTTP responder. Use port 0 for an
    /// ephemeral port ([`Server::metrics_addr`] reports it).
    pub metrics_addr: Option<String>,
    /// Requests slower than this get a slow-op log line and their span
    /// retained in the `server-stats` `recent-slow-ops` section.
    pub slow_op_threshold: Duration,
    /// Spans kept in the request-trace ring buffer. 0 disables span
    /// capture entirely (used by the overhead A/B bench).
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_pending_connections: 64,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_millis(100),
            live: LiveConfig::default(),
            metrics_addr: None,
            slow_op_threshold: Duration::from_millis(500),
            trace_capacity: 256,
        }
    }
}

/// Remote trigger for a graceful stop, cloneable across threads.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Slow-op spans retained for `server-stats` (a burst of fast
/// requests cannot evict them from the main trace ring).
const SLOW_OP_CAPACITY: usize = 64;
/// Slow-op rows reported per `server-stats` response.
const SLOW_OPS_REPORTED: usize = 16;

/// The bound daemon. [`Server::run`] blocks until shutdown.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    store: Arc<ProfileStore>,
    sessions: Arc<SessionManager>,
    metrics: Arc<Metrics>,
    registry: Arc<Registry>,
    trace: Arc<SpanRing>,
    slow_ops: Arc<SpanRing>,
    metrics_listener: Option<(TcpListener, SocketAddr)>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
    started: Instant,
}

impl Server {
    /// Bind the listener (use port 0 for an ephemeral port) without
    /// starting to serve. Also binds the `--metrics-addr` HTTP
    /// listener, if configured, and assembles the metric registry:
    /// every server, store, and live counter is adopted here, so the
    /// scrape and `server-stats` read the same storage.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        store: Arc<ProfileStore>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let sessions = SessionManager::new(Arc::clone(&store), config.live.clone());
        let metrics = Arc::new(Metrics::new());
        let started = Instant::now();

        let registry = Arc::new(Registry::new());
        metrics.register(&registry);
        store.register_metrics(&registry);
        sessions.register_metrics(&registry);
        registry.gauge_fn(
            "numa_server_uptime_seconds",
            "Seconds since the daemon started.",
            &[],
            move || started.elapsed().as_secs().min(i64::MAX as u64) as i64,
        );

        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(http::bind(addr)?),
            None => None,
        };

        Ok(Server {
            listener,
            local_addr,
            store,
            sessions,
            metrics,
            registry,
            trace: Arc::new(SpanRing::new(config.trace_capacity)),
            slow_ops: Arc::new(SpanRing::new(if config.trace_capacity == 0 {
                0
            } else {
                SLOW_OP_CAPACITY
            })),
            metrics_listener,
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
            started,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Where `GET /metrics` is served, if `metrics_addr` was
    /// configured (reports the real port when bound ephemerally).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener.as_ref().map(|(_, addr)| *addr)
    }

    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// The daemon's metric registry (everything `GET /metrics` serves).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Serve until shutdown, then drain and join every worker. Returns
    /// the final observability snapshot.
    pub fn run(self) -> io::Result<ServerStatsReport> {
        // Non-blocking accept so the loop can observe the shutdown flag
        // promptly; the listener has no other wake-up mechanism without
        // an async reactor.
        self.listener.set_nonblocking(true)?;
        let (tx, rx) =
            std::sync::mpsc::sync_channel::<TcpStream>(self.config.max_pending_connections.max(1));
        let rx = Arc::new(parking_lot::Mutex::new(rx));

        let scraper = match self.metrics_listener {
            Some((listener, _)) => {
                let registry = Arc::clone(&self.registry);
                let shutdown = Arc::clone(&self.shutdown);
                Some(
                    std::thread::Builder::new()
                        .name("hpcd-metrics-http".to_string())
                        .spawn(move || http::serve(listener, registry, shutdown))?,
                )
            }
            None => None,
        };

        let mut workers = Vec::with_capacity(self.config.workers.max(1));
        for i in 0..self.config.workers.max(1) {
            let ctx = WorkerCtx {
                rx: Arc::clone(&rx),
                store: Arc::clone(&self.store),
                sessions: Arc::clone(&self.sessions),
                metrics: Arc::clone(&self.metrics),
                registry: Arc::clone(&self.registry),
                trace: Arc::clone(&self.trace),
                slow_ops: Arc::clone(&self.slow_ops),
                shutdown: Arc::clone(&self.shutdown),
                config: self.config.clone(),
                started: self.started,
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hpcd-worker-{i}"))
                    .spawn(move || worker_loop(ctx))?,
            );
        }

        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.metrics.connection_accepted();
                    let _ = stream.set_read_timeout(Some(self.config.read_timeout));
                    let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                    let _ = stream.set_nodelay(true);
                    let mut pending = stream;
                    // Backpressure: when the queue is full, keep the
                    // connection and retry instead of accepting more.
                    loop {
                        if self.shutdown.load(Ordering::SeqCst) {
                            break; // drop the connection; we are exiting
                        }
                        match tx.try_send(pending) {
                            Ok(()) => break,
                            Err(TrySendError::Full(s)) => {
                                pending = s;
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Closing the queue lets workers drain what was already
        // accepted and then exit.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        if let Some(s) = scraper {
            let _ = s.join();
        }
        // Workers are gone, so no session op can race the janitor's
        // teardown; open sessions die with the daemon (their staged WAL
        // chunks are dropped as unsealed on the next replay).
        self.sessions.stop();
        Ok(snapshot_stats(
            &self.metrics,
            &self.store,
            &self.sessions,
            &self.slow_ops,
            self.started.elapsed(),
        ))
    }
}

struct WorkerCtx {
    rx: Arc<parking_lot::Mutex<Receiver<TcpStream>>>,
    store: Arc<ProfileStore>,
    sessions: Arc<SessionManager>,
    metrics: Arc<Metrics>,
    registry: Arc<Registry>,
    trace: Arc<SpanRing>,
    slow_ops: Arc<SpanRing>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
    started: Instant,
}

fn worker_loop(ctx: WorkerCtx) {
    loop {
        // Lock only to receive; serving happens with the queue free so
        // other workers keep pulling connections.
        let stream = {
            let guard = ctx.rx.lock();
            guard.recv()
        };
        match stream {
            Ok(s) => {
                serve_connection(&ctx, s);
                ctx.metrics.connection_closed();
            }
            Err(_) => return, // queue closed: shutdown drained
        }
    }
}

/// Serve one connection until EOF, error, timeout, or drain.
fn serve_connection(ctx: &WorkerCtx, mut stream: TcpStream) {
    loop {
        let draining = ctx.shutdown.load(Ordering::SeqCst);
        if draining {
            // One short grace read: answer a request already on the
            // wire, but do not wait for new work.
            let _ = stream.set_read_timeout(Some(ctx.config.drain_timeout));
        }
        match read_frame(&mut stream, ctx.config.max_frame) {
            Ok(None) => return, // clean EOF
            Ok(Some(frame)) => {
                if frame.version != PROTOCOL_VERSION {
                    let resp = Response::Error(WireError::UnsupportedVersion {
                        got: frame.version,
                        supported: PROTOCOL_VERSION,
                    });
                    let _ = send(&mut stream, &resp);
                    return;
                }
                let start = Instant::now();
                // Open the thread-local trace so the store can deposit
                // facts (shard, cache outcome, WAL-ack wait) into the
                // span this request is building.
                let tracing = ctx.config.trace_capacity > 0;
                if tracing {
                    trace::begin();
                }
                let payload_bytes = frame.payload.len() as u64;
                let mut malformed = false;
                let unknown_caps = frame.flags & !caps::SUPPORTED;
                let (op, resp) = if unknown_caps != 0 {
                    // The frame is structurally sound, so the byte
                    // stream stays trustworthy: answer with a typed
                    // capability error and keep serving (older daemons
                    // hung up on any non-zero flags word).
                    (
                        OpSlot::UNKNOWN,
                        Response::Error(WireError::Unsupported {
                            feature: frame.flags,
                            supported: caps::SUPPORTED,
                        }),
                    )
                } else {
                    match decode_request(&frame.payload) {
                        Ok(req) => {
                            let op = OpSlot::of(&req);
                            let missing = req.required_caps() & !frame.flags;
                            if missing != 0 {
                                // A streaming op that did not declare
                                // STREAMING is a client from before the
                                // capability existed; tell it precisely
                                // what it lacks.
                                (
                                    op,
                                    Response::Error(WireError::Unsupported {
                                        feature: missing,
                                        supported: caps::SUPPORTED,
                                    }),
                                )
                            } else {
                                (op, execute(ctx, req))
                            }
                        }
                        Err(e) => {
                            malformed = true;
                            ctx.metrics.malformed_frame();
                            (OpSlot::UNKNOWN, Response::Error(e))
                        }
                    }
                };
                let is_error = matches!(resp, Response::Error(_));
                let sent = send(&mut stream, &resp);
                let elapsed = start.elapsed();
                ctx.metrics.record_request(op, elapsed, is_error);
                if tracing {
                    record_span(ctx, op, payload_bytes, is_error, elapsed);
                }
                if sent.is_err() || matches!(resp, Response::ShuttingDown) {
                    return;
                }
                // Request-level errors keep the connection; stream-level
                // ones (undecodable payload) already poisoned the byte
                // stream, so close.
                if malformed || draining {
                    return;
                }
            }
            Err(RecvError::Frame(FrameError::Oversized { len, max })) => {
                ctx.metrics.rejected_oversized();
                let resp = Response::Error(WireError::Oversized { len, max });
                let _ = send(&mut stream, &resp);
                return;
            }
            Err(RecvError::Frame(e)) => {
                ctx.metrics.malformed_frame();
                let resp = Response::Error(WireError::Malformed {
                    detail: e.to_string(),
                });
                let _ = send(&mut stream, &resp);
                return;
            }
            Err(e) if e.is_timeout() => {
                if !draining {
                    ctx.metrics.timeout();
                }
                return;
            }
            Err(_) => return, // reset / truncated: nothing to answer
        }
    }
}

/// Close the request's trace, push its span into the ring, and — when
/// it crossed the slow-op threshold — log a line and retain the span
/// where fast requests cannot evict it.
fn record_span(ctx: &WorkerCtx, op: OpSlot, bytes: u64, error: bool, elapsed: Duration) {
    let notes = trace::take();
    let total_us = elapsed.as_micros().min(u64::MAX as u128) as u64;
    let seq = ctx.trace.push(SpanBody {
        op: op.name(),
        bytes,
        shard: notes.shard,
        cache_hit: notes.cache_hit,
        wal_ack_us: notes.wal_ack_us,
        total_us,
        error,
    });
    if elapsed >= ctx.config.slow_op_threshold {
        eprintln!(
            "hpcd-sim: slow-op #{seq} {} {total_us} µs ({bytes} byte(s){}{}{}{})",
            op.name(),
            match notes.shard {
                Some(s) => format!(", shard {s}"),
                None => String::new(),
            },
            match notes.cache_hit {
                Some(true) => ", cache hit",
                Some(false) => ", cache miss",
                None => "",
            },
            match notes.wal_ack_us {
                Some(us) => format!(", wal ack {us} µs"),
                None => String::new(),
            },
            if error { ", error" } else { "" },
        );
        ctx.slow_ops.retain(Span {
            seq,
            op: op.name(),
            bytes,
            shard: notes.shard,
            cache_hit: notes.cache_hit,
            wal_ack_us: notes.wal_ack_us,
            total_us,
            error,
        });
    }
}

/// Send a response. The `max_frame` config bounds *inbound* frames (it
/// protects the daemon's memory from untrusted peers); outbound
/// responses are limited only by the wire format's own `u32` length
/// field, so tightening the inbound cap never makes stats or listing
/// responses unsendable.
fn send(stream: &mut TcpStream, resp: &Response) -> Result<(), RecvError> {
    // Every response frame advertises the daemon's full capability set,
    // so one ping round trip tells a client what this build can do.
    write_frame_flags(
        stream,
        PROTOCOL_VERSION,
        caps::SUPPORTED,
        &encode_response(resp),
        u32::MAX as usize,
    )
}

/// Execute one request against the store. Panics in analysis code are
/// converted to a typed `Internal` error so a bad profile can never
/// take a worker down.
fn execute(ctx: &WorkerCtx, req: Request) -> Response {
    let result = catch_unwind(AssertUnwindSafe(|| execute_inner(ctx, &req)));
    match result {
        Ok(resp) => resp,
        Err(panic) => {
            let detail = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("panic in request handler")
                .to_string();
            Response::Error(WireError::Internal { detail })
        }
    }
}

fn execute_inner(ctx: &WorkerCtx, req: &Request) -> Response {
    let store = &ctx.store;
    match req {
        Request::Ping => Response::Pong,
        Request::Ingest { label, json } => match store.ingest_bytes(label, json) {
            Ok((id, added)) => Response::Ingested {
                id: id.to_string(),
                added,
            },
            Err(e) => Response::Error(wire_error(e)),
        },
        Request::List => Response::Profiles(
            store
                .entries()
                .into_iter()
                .map(|e| ProfileEntry {
                    id: e.id.to_string(),
                    label: e.label.to_string(),
                    threads: e.threads,
                    json_bytes: e.json_bytes,
                })
                .collect(),
        ),
        Request::Resolve { reference } => match store.resolve(reference) {
            Ok(sp) => Response::Resolved {
                id: sp.id.to_string(),
                label: sp.label.to_string(),
            },
            Err(e) => Response::Error(wire_error(e)),
        },
        Request::Aggregate => text_query(ctx, Query::Aggregate),
        Request::Top { n } => text_query(ctx, Query::TopVariables(*n)),
        Request::Report { profile, format } => match resolve_id(ctx, profile) {
            Err(e) => Response::Error(e),
            Ok(id) => match format {
                ReportFormat::Text => text_query(ctx, Query::TextReport(id)),
                ReportFormat::Json => text_query(ctx, Query::ReportJson(id)),
            },
        },
        Request::CodeView {
            profile,
            min_share_permille,
        } => match resolve_id(ctx, profile) {
            Err(e) => Response::Error(e),
            Ok(id) => text_query(
                ctx,
                Query::CodeView {
                    profile: id,
                    min_share_permille: *min_share_permille,
                },
            ),
        },
        Request::AddressView { profile, var } => match resolve_id(ctx, profile) {
            Err(e) => Response::Error(e),
            Ok(id) => text_query(
                ctx,
                Query::AddressView {
                    profile: id,
                    var: var.clone(),
                },
            ),
        },
        Request::Diff { before, after } => {
            match (resolve_id(ctx, before), resolve_id(ctx, after)) {
                (Ok(b), Ok(a)) => text_query(
                    ctx,
                    Query::Diff {
                        before: b,
                        after: a,
                    },
                ),
                (Err(e), _) | (_, Err(e)) => Response::Error(e),
            }
        }
        Request::StoreStats => Response::Text(store.stats().render()),
        Request::ServerStats => Response::ServerStats(Box::new(snapshot_stats(
            &ctx.metrics,
            store,
            &ctx.sessions,
            &ctx.slow_ops,
            ctx.started.elapsed(),
        ))),
        Request::Metrics => Response::Text(ctx.registry.render()),
        Request::ClearCache => {
            store.clear_cache();
            Response::CacheCleared
        }
        Request::Shutdown => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
        Request::OpenSession { label } => match ctx.sessions.open(label) {
            Ok(t) => Response::SessionOpened {
                session: t.session,
                lease_ms: t.lease.as_millis().min(u64::MAX as u128) as u64,
                max_chunk_bytes: t.max_chunk_bytes as u64,
                max_session_bytes: t.max_session_bytes as u64,
            },
            Err(e) => Response::Error(session_error(e)),
        },
        Request::AppendChunk {
            session,
            seq,
            chunk,
        } => match ctx.sessions.append(*session, *seq, chunk) {
            Ok(open_bytes) => Response::ChunkAppended {
                session: *session,
                seq: *seq,
                open_bytes: open_bytes as u64,
            },
            Err(e) => Response::Error(session_error(e)),
        },
        Request::SealSession { session } => match ctx.sessions.seal(*session) {
            Ok(sealed) => Response::SessionSealed {
                id: sealed.id.to_string(),
                added: sealed.added,
                chunks: sealed.chunks,
            },
            Err(e) => Response::Error(session_error(e)),
        },
        Request::AbortSession { session } => match ctx.sessions.abort(*session) {
            Ok(()) => Response::SessionAborted { session: *session },
            Err(e) => Response::Error(session_error(e)),
        },
        Request::IngestBinary { label, bytes } => match store.ingest_binary(label, bytes) {
            Ok((id, added)) => Response::Ingested {
                id: id.to_string(),
                added,
            },
            Err(e) => Response::Error(wire_error(e)),
        },
        Request::AppendChunkBinary {
            session,
            seq,
            bytes,
        } => match ctx.sessions.append_binary(*session, *seq, bytes) {
            Ok(open_bytes) => Response::ChunkAppended {
                session: *session,
                seq: *seq,
                open_bytes: open_bytes as u64,
            },
            Err(e) => Response::Error(session_error(e)),
        },
    }
}

/// Map typed session failures onto the wire taxonomy. Capacity-induced
/// rejections become [`WireError::Busy`] (retry later); the rest keep
/// their structure so a client can react programmatically.
fn session_error(e: SessionError) -> WireError {
    match e {
        SessionError::UnknownSession { session } => WireError::UnknownSession { session },
        SessionError::BadSequence {
            session,
            got,
            expected,
        } => WireError::BadChunkSequence {
            session,
            got,
            expected,
        },
        SessionError::ChunkTooLarge { session, len, max } => WireError::ChunkTooLarge {
            session,
            len: len as u64,
            max: max as u64,
        },
        SessionError::SessionFull {
            session,
            bytes,
            max,
        } => WireError::SessionBufferFull {
            session,
            bytes: bytes as u64,
            max: max as u64,
        },
        e @ (SessionError::TooManySessions { .. } | SessionError::Backpressure { .. }) => {
            WireError::Busy {
                detail: e.to_string(),
            }
        }
        SessionError::ChunkParse {
            session,
            seq,
            message,
        } => WireError::ChunkParse {
            session,
            seq,
            message,
        },
        SessionError::Incomplete { session, reason } => WireError::SessionIncomplete {
            session,
            detail: reason,
        },
        e @ SessionError::NotDurable { .. } => WireError::NotDurable {
            detail: e.to_string(),
        },
    }
}

fn resolve_id(ctx: &WorkerCtx, reference: &str) -> Result<numa_store::ProfileId, WireError> {
    ctx.store
        .resolve(reference)
        .map(|sp| sp.id)
        .map_err(wire_error)
}

fn text_query(ctx: &WorkerCtx, q: Query) -> Response {
    match ctx.store.query(q) {
        Ok(artifact) => Response::Text(artifact.text()),
        Err(e) => Response::Error(wire_error(e)),
    }
}

fn wire_error(e: StoreError) -> WireError {
    match e {
        StoreError::Parse { label, message } => WireError::ProfileParse { label, message },
        StoreError::UnknownProfile(id) => WireError::UnknownProfile {
            reference: id.to_string(),
        },
        StoreError::NoMatch(reference) => WireError::UnknownProfile { reference },
        StoreError::Ambiguous { needle, candidates } => WireError::AmbiguousReference {
            reference: needle,
            candidates: candidates
                .into_iter()
                .map(|(id, label)| format!("{id}  {label}"))
                .collect(),
        },
        StoreError::EmptyStore => WireError::EmptyStore,
        StoreError::UnknownVariable(name) => WireError::UnknownVariable { name },
        StoreError::Persist { message } => WireError::NotDurable { detail: message },
    }
}

fn snapshot_stats(
    metrics: &Metrics,
    store: &ProfileStore,
    sessions: &SessionManager,
    slow_ops: &SpanRing,
    uptime: Duration,
) -> ServerStatsReport {
    let store_stats = store.stats();
    let persist = store_stats.persist;
    let live = sessions.stats();
    // Slow spans arrive from racing workers; order the report by the
    // trace sequence so "oldest first" holds for readers.
    let mut recent_slow_ops: Vec<SlowOpRow> = slow_ops
        .recent(SLOW_OPS_REPORTED)
        .into_iter()
        .map(|s| SlowOpRow {
            seq: s.seq,
            op: s.op.to_string(),
            bytes: s.bytes,
            shard: s.shard,
            cache_hit: s.cache_hit,
            wal_ack_us: s.wal_ack_us,
            total_us: s.total_us,
            error: s.error,
        })
        .collect();
    recent_slow_ops.sort_by_key(|s| s.seq);
    ServerStatsReport {
        uptime_ms: uptime.as_millis().min(u64::MAX as u128) as u64,
        connections_accepted: metrics.connections_accepted_total(),
        connections_closed: metrics.connections_closed_total(),
        requests_total: metrics.requests_total(),
        errors_total: metrics.errors_total(),
        rejected_oversized: metrics.rejected_oversized_total(),
        malformed_frames: metrics.malformed_total(),
        timeouts: metrics.timeouts_total(),
        per_op: metrics.per_op(),
        latency: metrics.latency_summary(),
        store_profiles: store_stats.profiles,
        store_set_hash: format!("{:016x}", store_stats.set_hash),
        cache_hits: store_stats.cache.hits,
        cache_misses: store_stats.cache.misses,
        cache_insertions: store_stats.cache.insertions,
        cache_evictions: store_stats.cache.evictions,
        durable: persist.durable,
        snapshot_records_loaded: persist.snapshot_records_loaded,
        wal_records_replayed: persist.wal_records_replayed,
        wal_truncated_bytes: persist.wal_truncated_bytes + persist.snapshot_truncated_bytes,
        wal_appends: persist.wal_appends,
        wal_group_commits: persist.wal_group_commits,
        snapshots_written: persist.snapshots_written,
        persist_io_errors: persist.io_errors,
        store_shards: store_stats
            .shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardStatRow {
                shard,
                profiles: s.profiles,
                ingests: s.ingests,
                read_contended: s.read_contended,
                write_contended: s.write_contended,
            })
            .collect(),
        live_sessions: live.open_sessions as u64,
        live_open_bytes: live.open_bytes as u64,
        live_sessions_opened: live.opened,
        live_sessions_sealed: live.sealed,
        live_sessions_aborted: live.aborted,
        live_leases_reaped: live.reaped,
        live_chunks_appended: live.chunks_appended,
        live_backpressure: live.backpressure_rejections,
        sessions_recovered: persist.sessions_recovered,
        sessions_dropped: persist.sessions_dropped,
        session_chunks_replayed: persist.session_chunks_replayed,
        recent_slow_ops,
    }
}
