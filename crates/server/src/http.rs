//! Minimal embedded HTTP/1.1 responder for `GET /metrics`.
//!
//! Just enough HTTP for a Prometheus scraper or `curl`: parse the
//! request line, answer `GET /metrics` with the registry's text
//! exposition, 404 anything else, 405 non-GET methods. One short-lived
//! thread per connection (scrapes are rare and trusted — this listens
//! where the operator pointed `--metrics-addr`, typically loopback);
//! the accept loop is non-blocking so it can observe the daemon's
//! shutdown flag.

use numa_obs::Registry;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Content type of the Prometheus text exposition format.
const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Bind the metrics listener (port 0 for ephemeral) without serving.
pub fn bind(addr: &str) -> io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    Ok((listener, addr))
}

/// Serve scrapes until `shutdown` flips. Blocks; callers spawn this on
/// its own thread.
pub fn serve(listener: TcpListener, registry: Arc<Registry>, shutdown: Arc<AtomicBool>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let registry = Arc::clone(&registry);
                // Scrape handling off the accept loop so one slow
                // reader cannot block the next scraper.
                let _ = std::thread::Builder::new()
                    .name("hpcd-metrics".to_string())
                    .spawn(move || answer(stream, &registry));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn answer(stream: TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the headers so the peer's write buffer is not left full
    // when we answer (politeness; we never need the header values).
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = match (method, path) {
        ("GET", "/metrics") => ("200 OK", registry.render()),
        ("GET", _) => ("404 Not Found", "not found; try /metrics\n".to_string()),
        _ => ("405 Method Not Allowed", "only GET is served\n".to_string()),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}
