//! Blocking client for the `hpcd` daemon: one TCP connection, one
//! request/response exchange per call, typed errors throughout.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ProfileEntry, RecvError,
    ReportFormat, Request, Response, ServerStatsReport, WireError, DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// The byte stream was not valid protocol frames.
    Transport(RecvError),
    /// The daemon answered with a typed error.
    Server(WireError),
    /// The daemon answered something other than what the call expects
    /// (a protocol-level surprise, not a server-reported error).
    Unexpected { expected: &'static str, got: String },
    /// The daemon closed the connection without answering.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Transport(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected { expected, got } => {
                write!(f, "unexpected response (wanted {expected}): {got}")
            }
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Io(e) => ClientError::Io(e),
            other => ClientError::Transport(other),
        }
    }
}

/// A blocking connection to an `hpcd-sim` daemon. Requests on one
/// client are serialized (the protocol has no pipelining); use one
/// client per thread for concurrency.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connect with default timeouts (5 s on every socket operation).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Override the local frame cap (must match the daemon's to ingest
    /// very large profiles).
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    /// One raw request/response exchange. Server-reported errors come
    /// back as `Ok(Response::Error(..))`; use [`Client::call`] to have
    /// them folded into `Err`.
    pub fn call_raw(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(
            &mut self.stream,
            PROTOCOL_VERSION,
            &encode_request(req),
            self.max_frame,
        )?;
        let frame =
            read_frame(&mut self.stream, self.max_frame)?.ok_or(ClientError::Disconnected)?;
        if frame.version != PROTOCOL_VERSION {
            return Err(ClientError::Server(WireError::UnsupportedVersion {
                got: frame.version,
                supported: PROTOCOL_VERSION,
            }));
        }
        decode_response(&frame.payload).map_err(ClientError::Server)
    }

    /// One exchange with server errors mapped to [`ClientError::Server`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.call_raw(req)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            resp => Ok(resp),
        }
    }

    // -- typed convenience wrappers ------------------------------------

    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Returns `(id, newly_added)`.
    pub fn ingest(&mut self, label: &str, json: &str) -> Result<(String, bool), ClientError> {
        let req = Request::Ingest {
            label: label.to_string(),
            json: json.to_string(),
        };
        match self.call(&req)? {
            Response::Ingested { id, added } => Ok((id, added)),
            other => Err(unexpected("Ingested", &other)),
        }
    }

    pub fn list(&mut self) -> Result<Vec<ProfileEntry>, ClientError> {
        match self.call(&Request::List)? {
            Response::Profiles(entries) => Ok(entries),
            other => Err(unexpected("Profiles", &other)),
        }
    }

    pub fn resolve(&mut self, reference: &str) -> Result<(String, String), ClientError> {
        let req = Request::Resolve {
            reference: reference.to_string(),
        };
        match self.call(&req)? {
            Response::Resolved { id, label } => Ok((id, label)),
            other => Err(unexpected("Resolved", &other)),
        }
    }

    pub fn aggregate(&mut self) -> Result<String, ClientError> {
        self.text(&Request::Aggregate)
    }

    pub fn top(&mut self, n: usize) -> Result<String, ClientError> {
        self.text(&Request::Top { n })
    }

    pub fn report(&mut self, profile: &str, format: ReportFormat) -> Result<String, ClientError> {
        self.text(&Request::Report {
            profile: profile.to_string(),
            format,
        })
    }

    pub fn code_view(
        &mut self,
        profile: &str,
        min_share_permille: u16,
    ) -> Result<String, ClientError> {
        self.text(&Request::CodeView {
            profile: profile.to_string(),
            min_share_permille,
        })
    }

    pub fn address_view(&mut self, profile: &str, var: &str) -> Result<String, ClientError> {
        self.text(&Request::AddressView {
            profile: profile.to_string(),
            var: var.to_string(),
        })
    }

    pub fn diff(&mut self, before: &str, after: &str) -> Result<String, ClientError> {
        self.text(&Request::Diff {
            before: before.to_string(),
            after: after.to_string(),
        })
    }

    pub fn store_stats(&mut self) -> Result<String, ClientError> {
        self.text(&Request::StoreStats)
    }

    pub fn server_stats(&mut self) -> Result<ServerStatsReport, ClientError> {
        match self.call(&Request::ServerStats)? {
            Response::ServerStats(s) => Ok(*s),
            other => Err(unexpected("ServerStats", &other)),
        }
    }

    pub fn clear_cache(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::ClearCache)? {
            Response::CacheCleared => Ok(()),
            other => Err(unexpected("CacheCleared", &other)),
        }
    }

    /// Ask the daemon to drain and exit; the daemon closes the
    /// connection after answering.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    fn text(&mut self, req: &Request) -> Result<String, ClientError> {
        match self.call(req)? {
            Response::Text(s) => Ok(s),
            other => Err(unexpected("Text", &other)),
        }
    }
}

fn unexpected(expected: &'static str, got: &Response) -> ClientError {
    ClientError::Unexpected {
        expected,
        got: format!("{got:?}"),
    }
}
