//! Blocking client for the `hpcd` daemon: one TCP connection, one
//! request/response exchange per call, typed errors throughout.

use crate::protocol::{
    caps, decode_response, encode_request, read_frame, write_frame_flags, ProfileEntry, RecvError,
    ReportFormat, Request, Response, ServerStatsReport, WireError, DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
};
use numa_profiler::NumaProfile;
use numa_store::stream::split_profile;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// The byte stream was not valid protocol frames.
    Transport(RecvError),
    /// The daemon answered with a typed error.
    Server(WireError),
    /// The daemon answered something other than what the call expects
    /// (a protocol-level surprise, not a server-reported error).
    Unexpected { expected: &'static str, got: String },
    /// The daemon closed the connection without answering.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Transport(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected { expected, got } => {
                write!(f, "unexpected response (wanted {expected}): {got}")
            }
            ClientError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Io(e) => ClientError::Io(e),
            other => ClientError::Transport(other),
        }
    }
}

/// What [`Client::open_session`] hands back: the session id plus the
/// limits and lease the daemon imposes.
#[derive(Clone, Copy, Debug)]
pub struct SessionInfo {
    pub session: u64,
    /// Append at least once per lease or the janitor reaps the session.
    pub lease_ms: u64,
    pub max_chunk_bytes: u64,
    pub max_session_bytes: u64,
}

/// A blocking connection to an `hpcd-sim` daemon. Requests on one
/// client are serialized (the protocol has no pipelining); use one
/// client per thread for concurrency.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
    server_caps: Option<u16>,
}

impl Client {
    /// Connect with default timeouts (5 s on every socket operation).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            server_caps: None,
        })
    }

    /// Connect to a daemon that may still be starting: retry with
    /// capped exponential backoff (10 ms doubling to 500 ms) until a
    /// connection succeeds or `deadline` elapses, then return the last
    /// connect error. Replaces the ping-poll loops tests and scripts
    /// used to spin while a daemon bound its port.
    pub fn connect_retry(
        addr: impl ToSocketAddrs,
        deadline: Duration,
    ) -> Result<Client, ClientError> {
        let give_up = Instant::now() + deadline;
        let mut backoff = Duration::from_millis(10);
        loop {
            let remaining = give_up.saturating_duration_since(Instant::now());
            let attempt = remaining.clamp(Duration::from_millis(10), Duration::from_secs(5));
            match Self::connect_with_timeout(&addr, attempt) {
                Ok(c) => {
                    // The attempt timeout can be tiny near the deadline;
                    // restore sane per-op socket timeouts for the
                    // connection's working life.
                    c.stream.set_read_timeout(Some(Duration::from_secs(5)))?;
                    c.stream.set_write_timeout(Some(Duration::from_secs(5)))?;
                    return Ok(c);
                }
                Err(e) => {
                    if Instant::now() + backoff >= give_up {
                        return Err(e);
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(500));
                }
            }
        }
    }

    /// Capability bits the daemon advertised on its most recent
    /// response frame; `None` before the first exchange.
    pub fn server_caps(&self) -> Option<u16> {
        self.server_caps
    }

    /// Capability bits the daemon supports, probing with a
    /// [`Client::ping`] on the first call (cached for the connection's
    /// life afterwards — every response frame refreshes it).
    pub fn negotiated_caps(&mut self) -> Result<u16, ClientError> {
        match self.server_caps {
            Some(c) => Ok(c),
            None => self.ping(),
        }
    }

    /// Whether the daemon speaks the binary profile codec
    /// ([`caps::BINARY_CODEC`]). Probes with a ping on first use.
    pub fn binary_codec(&mut self) -> Result<bool, ClientError> {
        Ok(self.negotiated_caps()? & caps::BINARY_CODEC != 0)
    }

    /// Override the local frame cap (must match the daemon's to ingest
    /// very large profiles).
    pub fn set_max_frame(&mut self, max: usize) {
        self.max_frame = max;
    }

    /// One raw request/response exchange. Server-reported errors come
    /// back as `Ok(Response::Error(..))`; use [`Client::call`] to have
    /// them folded into `Err`.
    pub fn call_raw(&mut self, req: &Request) -> Result<Response, ClientError> {
        // The request frame declares the capabilities the op relies on
        // (e.g. STREAMING on session ops) so an older daemon answers
        // with a typed `Unsupported` instead of killing the connection.
        write_frame_flags(
            &mut self.stream,
            PROTOCOL_VERSION,
            req.required_caps(),
            &encode_request(req),
            self.max_frame,
        )?;
        let frame =
            read_frame(&mut self.stream, self.max_frame)?.ok_or(ClientError::Disconnected)?;
        if frame.version != PROTOCOL_VERSION {
            return Err(ClientError::Server(WireError::UnsupportedVersion {
                got: frame.version,
                supported: PROTOCOL_VERSION,
            }));
        }
        self.server_caps = Some(frame.flags);
        decode_response(&frame.payload).map_err(ClientError::Server)
    }

    /// One exchange with server errors mapped to [`ClientError::Server`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.call_raw(req)? {
            Response::Error(e) => Err(ClientError::Server(e)),
            resp => Ok(resp),
        }
    }

    // -- typed convenience wrappers ------------------------------------

    /// Liveness probe. Returns the capability bits the daemon
    /// advertises (see [`crate::protocol::caps`]).
    pub fn ping(&mut self) -> Result<u16, ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(self.server_caps.unwrap_or(0)),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Returns `(id, newly_added)`.
    pub fn ingest(&mut self, label: &str, json: &str) -> Result<(String, bool), ClientError> {
        let req = Request::Ingest {
            label: label.to_string(),
            json: json.to_string(),
        };
        match self.call(&req)? {
            Response::Ingested { id, added } => Ok((id, added)),
            other => Err(unexpected("Ingested", &other)),
        }
    }

    /// Ingest already-encoded `numa-codec` profile bytes. Requires a
    /// daemon advertising [`caps::BINARY_CODEC`]; older daemons answer
    /// with a typed `Unsupported` error. Returns `(id, newly_added)`.
    pub fn ingest_binary(
        &mut self,
        label: &str,
        bytes: Vec<u8>,
    ) -> Result<(String, bool), ClientError> {
        let req = Request::IngestBinary {
            label: label.to_string(),
            bytes,
        };
        match self.call(&req)? {
            Response::Ingested { id, added } => Ok((id, added)),
            other => Err(unexpected("Ingested", &other)),
        }
    }

    /// Ingest an in-memory profile, negotiating the encoding: the
    /// binary codec when the daemon advertises [`caps::BINARY_CODEC`]
    /// (probing with a ping if this is the connection's first
    /// exchange), canonical JSON otherwise. Either way the stored
    /// profile — content id, dedup, queries — is identical.
    pub fn ingest_profile(
        &mut self,
        label: &str,
        profile: &NumaProfile,
    ) -> Result<(String, bool), ClientError> {
        if self.binary_codec()? {
            self.ingest_binary(label, numa_codec::encode_profile(profile))
        } else {
            self.ingest(label, &profile.to_json())
        }
    }

    pub fn list(&mut self) -> Result<Vec<ProfileEntry>, ClientError> {
        match self.call(&Request::List)? {
            Response::Profiles(entries) => Ok(entries),
            other => Err(unexpected("Profiles", &other)),
        }
    }

    pub fn resolve(&mut self, reference: &str) -> Result<(String, String), ClientError> {
        let req = Request::Resolve {
            reference: reference.to_string(),
        };
        match self.call(&req)? {
            Response::Resolved { id, label } => Ok((id, label)),
            other => Err(unexpected("Resolved", &other)),
        }
    }

    pub fn aggregate(&mut self) -> Result<String, ClientError> {
        self.text(&Request::Aggregate)
    }

    pub fn top(&mut self, n: usize) -> Result<String, ClientError> {
        self.text(&Request::Top { n })
    }

    pub fn report(&mut self, profile: &str, format: ReportFormat) -> Result<String, ClientError> {
        self.text(&Request::Report {
            profile: profile.to_string(),
            format,
        })
    }

    pub fn code_view(
        &mut self,
        profile: &str,
        min_share_permille: u16,
    ) -> Result<String, ClientError> {
        self.text(&Request::CodeView {
            profile: profile.to_string(),
            min_share_permille,
        })
    }

    pub fn address_view(&mut self, profile: &str, var: &str) -> Result<String, ClientError> {
        self.text(&Request::AddressView {
            profile: profile.to_string(),
            var: var.to_string(),
        })
    }

    pub fn diff(&mut self, before: &str, after: &str) -> Result<String, ClientError> {
        self.text(&Request::Diff {
            before: before.to_string(),
            after: after.to_string(),
        })
    }

    pub fn store_stats(&mut self) -> Result<String, ClientError> {
        self.text(&Request::StoreStats)
    }

    pub fn server_stats(&mut self) -> Result<ServerStatsReport, ClientError> {
        match self.call(&Request::ServerStats)? {
            Response::ServerStats(s) => Ok(*s),
            other => Err(unexpected("ServerStats", &other)),
        }
    }

    /// Prometheus text exposition of every daemon metric — the same
    /// text `GET /metrics` serves. Requires a daemon advertising
    /// [`caps::METRICS`]; older daemons answer a typed `Unsupported`.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.text(&Request::Metrics)
    }

    pub fn clear_cache(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::ClearCache)? {
            Response::CacheCleared => Ok(()),
            other => Err(unexpected("CacheCleared", &other)),
        }
    }

    /// Ask the daemon to drain and exit; the daemon closes the
    /// connection after answering.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    // -- streaming sessions --------------------------------------------

    /// Open a streaming ingestion session.
    pub fn open_session(&mut self, label: &str) -> Result<SessionInfo, ClientError> {
        let req = Request::OpenSession {
            label: label.to_string(),
        };
        match self.call(&req)? {
            Response::SessionOpened {
                session,
                lease_ms,
                max_chunk_bytes,
                max_session_bytes,
            } => Ok(SessionInfo {
                session,
                lease_ms,
                max_chunk_bytes,
                max_session_bytes,
            }),
            other => Err(unexpected("SessionOpened", &other)),
        }
    }

    /// Append chunk `seq` (strictly sequential from 0). Returns the
    /// daemon-wide buffered bytes after the append.
    pub fn append_chunk(
        &mut self,
        session: u64,
        seq: u64,
        chunk: &str,
    ) -> Result<u64, ClientError> {
        let req = Request::AppendChunk {
            session,
            seq,
            chunk: chunk.to_string(),
        };
        match self.call(&req)? {
            Response::ChunkAppended { open_bytes, .. } => Ok(open_bytes),
            other => Err(unexpected("ChunkAppended", &other)),
        }
    }

    /// [`Client::append_chunk`] with a binary-codec chunk payload
    /// (requires [`caps::BINARY_CODEC`] on top of streaming).
    pub fn append_chunk_binary(
        &mut self,
        session: u64,
        seq: u64,
        bytes: Vec<u8>,
    ) -> Result<u64, ClientError> {
        let req = Request::AppendChunkBinary {
            session,
            seq,
            bytes,
        };
        match self.call(&req)? {
            Response::ChunkAppended { open_bytes, .. } => Ok(open_bytes),
            other => Err(unexpected("ChunkAppended", &other)),
        }
    }

    /// Seal a session. Returns `(id, newly_added, chunks)`.
    pub fn seal_session(&mut self, session: u64) -> Result<(String, bool, u64), ClientError> {
        match self.call(&Request::SealSession { session })? {
            Response::SessionSealed { id, added, chunks } => Ok((id, added, chunks)),
            other => Err(unexpected("SessionSealed", &other)),
        }
    }

    /// Abort a session, discarding everything buffered for it.
    pub fn abort_session(&mut self, session: u64) -> Result<(), ClientError> {
        match self.call(&Request::AbortSession { session })? {
            Response::SessionAborted { .. } => Ok(()),
            other => Err(unexpected("SessionAborted", &other)),
        }
    }

    /// Stream a whole profile through a session: open, split into
    /// chunks of `threads_per_chunk` threads, append in sequence, seal.
    /// Returns `(id, newly_added, chunks)` — identical to what one-shot
    /// [`Client::ingest`] of the same profile would have stored.
    /// Chunk encoding is negotiated per connection: binary codec when
    /// the daemon advertises [`caps::BINARY_CODEC`], JSON otherwise.
    pub fn stream_profile(
        &mut self,
        label: &str,
        profile: &NumaProfile,
        threads_per_chunk: usize,
    ) -> Result<(String, bool, u64), ClientError> {
        let binary = self.binary_codec()?;
        let info = self.open_session(label)?;
        for (seq, chunk) in split_profile(profile, threads_per_chunk).iter().enumerate() {
            if binary {
                self.append_chunk_binary(info.session, seq as u64, chunk.to_binary())?;
            } else {
                self.append_chunk(info.session, seq as u64, &chunk.to_json())?;
            }
        }
        self.seal_session(info.session)
    }

    fn text(&mut self, req: &Request) -> Result<String, ClientError> {
        match self.call(req)? {
            Response::Text(s) => Ok(s),
            other => Err(unexpected("Text", &other)),
        }
    }
}

fn unexpected(expected: &'static str, got: &Response) -> ClientError {
    ClientError::Unexpected {
        expected,
        got: format!("{got:?}"),
    }
}
